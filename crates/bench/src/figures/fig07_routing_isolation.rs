//! Figure 7: isolating NetSmith's topology benefit from its routing
//! benefit.  Every *large-class* topology is simulated under both NDBT and
//! MCLB routing; the analytical cut-based and occupancy-based bounds are
//! printed alongside the measured saturation throughput.

use super::sweep_loads;
use netsmith::pipeline::RoutingScheme;
use netsmith_exp::prelude::*;
use netsmith_topo::bounds::ThroughputBounds;
use netsmith_topo::traffic::TrafficPattern;

pub const HEADER: &str = "topology,routing,measured_saturation_flits,expected_saturation_flits,cut_bound_flits,occupancy_bound_flits";

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig07_routing_isolation");
    spec.classes = vec![LinkClass::Large];
    spec.candidates = if profile.quick {
        vec![
            CandidateSpec::expert("butter-donut"),
            CandidateSpec::synth(ObjectiveSpec::LatOp),
        ]
    } else {
        vec![
            CandidateSpec::ExpertBaselines,
            CandidateSpec::synth(ObjectiveSpec::LatOp),
            CandidateSpec::synth(ObjectiveSpec::SCOp),
        ]
    };
    spec.scheme_override = Some(vec![RoutingScheme::Ndbt, RoutingScheme::Mclb]);
    let sim = if profile.quick {
        SimProfile::QuickClassClock
    } else {
        SimProfile::ClassDefault
    };
    spec.workloads = vec![WorkloadSpec::new(
        TrafficPattern::UniformRandom,
        sweep_loads(profile),
        sim,
    )];
    spec.assertions = vec![
        Assertion::MinRows { count: 4 },
        Assertion::ColumnPositive {
            column: "measured_saturation_flits".into(),
        },
    ];
    Figure::new(spec, HEADER, |cell: &Cell<'_>| {
        let network = cell.candidate.network();
        let workload = cell.workload.as_ref().expect("sweep workload");
        let bounds = ThroughputBounds::compute(&network.topology);
        let config = cell.sim_config();
        let curve = network.sweep(workload.pattern().clone(), &config, &workload.loads);
        let expected = network
            .routing
            .uniform_channel_loads()
            .saturation_injection_rate()
            * config.average_flits();
        vec![Row::new()
            .str(network.topology.name())
            .str(network.scheme.label())
            .float(curve.saturation_flits_per_node_cycle(), 4)
            .float(expected.min(bounds.limiting()), 4)
            .float(bounds.cut_bound, 4)
            .float(bounds.occupancy_bound, 4)]
    })
}
