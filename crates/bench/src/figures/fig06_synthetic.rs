//! Figure 6: synthetic-traffic latency/throughput curves for the 20-router
//! (4x5) NoIs — (a) coherence traffic (uniform random, 50/50 control/data
//! packets) and (b) memory traffic (requests to the memory-controller
//! routers).  Expert topologies use NDBT routing, NetSmith topologies use
//! MCLB, every NoI is clocked per its link-length class.

use super::{classes, sweep_loads};
use netsmith_exp::prelude::*;
use netsmith_topo::traffic::TrafficPattern;

pub const HEADER: &str =
    "traffic,class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated";

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig06_synthetic");
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::ExpertBaselines,
        CandidateSpec::synth(ObjectiveSpec::LatOp),
        CandidateSpec::synth(ObjectiveSpec::SCOp),
    ];
    let sim = if profile.quick {
        SimProfile::QuickClassClock
    } else {
        SimProfile::ClassDefault
    };
    let loads = sweep_loads(profile);
    spec.workloads = vec![
        WorkloadSpec::new(TrafficPattern::UniformRandom, loads.clone(), sim).labeled("coherence"),
        WorkloadSpec::new(TrafficPattern::Memory, loads, sim).labeled("memory"),
    ];
    spec.assertions = vec![
        Assertion::MinRows { count: 8 },
        Assertion::ColumnPositive {
            column: "latency_ns".into(),
        },
    ];
    Figure::new(spec, HEADER, sweep_cell).with_order(CellOrder::WorkloadMajor)
}

fn sweep_cell(cell: &Cell<'_>) -> Vec<Row> {
    let network = cell.candidate.network();
    let workload = cell.workload.as_ref().expect("sweep workload");
    let config = cell.sim_config();
    let curve = network.sweep(workload.pattern().clone(), &config, &workload.loads);
    eprintln!(
        "# {}/{}/{}: saturation {:.3} packets/node/ns",
        workload.name(),
        cell.candidate.class.name(),
        network.label(),
        curve.saturation_packets_per_ns(&config)
    );
    curve
        .points
        .iter()
        .map(|p| {
            Row::new()
                .str(workload.name())
                .str(cell.candidate.class.name())
                .str(network.topology.name())
                .str(network.scheme.label())
                .float(p.offered, 3)
                .float(p.accepted_packets_per_ns, 4)
                .float(p.latency_ns, 2)
                .bool(p.saturated)
        })
        .collect()
}
