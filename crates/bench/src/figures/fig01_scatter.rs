//! Figure 1: analytical latency vs expected saturation-throughput scatter
//! of every NoI topology (expert, LPBT-style and NetSmith) on the
//! 20-router 4x5 interposer.
//!
//! Output columns: topology, class, routing, average hops (latency proxy,
//! Y axis), expected saturation throughput in flits/node/cycle (X axis,
//! the tighter of the cut and occupancy bounds combined with the routed
//! maximum channel load).

use super::classes;
use netsmith_exp::prelude::*;
use netsmith_topo::bounds::ThroughputBounds;

pub const HEADER: &str = "topology,class,routing,avg_hops,expected_saturation_flits_per_node_cycle,cut_bound,occupancy_bound";

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig01_scatter");
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::ExpertBaselines,
        CandidateSpec::synth(ObjectiveSpec::LatOp),
        CandidateSpec::synth(ObjectiveSpec::SCOp),
    ];
    spec.assertions = vec![
        Assertion::MinRows { count: 4 },
        Assertion::ColumnPositive {
            column: "avg_hops".into(),
        },
        Assertion::ColumnPositive {
            column: "expected_saturation_flits_per_node_cycle".into(),
        },
    ];
    Figure::new(spec, HEADER, |cell: &Cell<'_>| {
        let network = cell.candidate.network();
        let topo = &network.topology;
        let bounds = ThroughputBounds::compute(topo);
        let routed_bound = network
            .routing
            .uniform_channel_loads()
            .saturation_injection_rate()
            * netsmith_sim::SimConfig::default().average_flits();
        let expected = bounds.limiting().min(routed_bound);
        vec![Row::new()
            .str(topo.name())
            .str(cell.candidate.class.name())
            .str(network.scheme.label())
            .float(network.metrics.average_hops, 3)
            .float(expected, 4)
            .float(bounds.cut_bound, 4)
            .float(bounds.occupancy_bound, 4)]
    })
}
