//! Figure 9: NoI power (static + dynamic) and area (routers + wires)
//! relative to the mesh baseline, using the DSENT-style model fed with the
//! simulator's measured per-link activity at a moderate operating point
//! (every flit is charged the wire it actually crossed).

use super::classes;
use netsmith::pipeline::{EvaluatedNetwork, RoutingScheme};
use netsmith::power::{area_report, power_report_from_activity, relative_to, PowerConfig};
use netsmith::prelude::expert;
use netsmith_exp::prelude::*;
use netsmith_power::{AreaReport, PowerReport};
use netsmith_topo::traffic::TrafficPattern;
use std::sync::{Arc, OnceLock};

pub const HEADER: &str = "topology,class,avg_link_utilization,static_power_rel_mesh,dynamic_power_rel_mesh,total_power_rel_mesh,router_area_rel_mesh,wire_area_rel_mesh,total_area_rel_mesh";

/// Flits/node/cycle at the measured operating point, below saturation for
/// every topology in the line-up.
const OPERATING_LOAD: f64 = 0.3;

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig09_power_area");
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::ExpertBaselines,
        CandidateSpec::synth(ObjectiveSpec::LatOp),
        CandidateSpec::synth(ObjectiveSpec::SCOp),
    ];
    let sim = if profile.quick {
        SimProfile::ClassWithWindows {
            warmup: 500,
            measure: 3_000,
            drain: 1_500,
        }
    } else {
        SimProfile::ClassDefault
    };
    spec.workloads = vec![WorkloadSpec::new(
        TrafficPattern::UniformRandom,
        vec![OPERATING_LOAD],
        sim,
    )];
    spec.assertions = vec![
        Assertion::MinRows { count: 4 },
        Assertion::ColumnPositive {
            column: "total_power_rel_mesh".into(),
        },
        Assertion::ColumnPositive {
            column: "total_area_rel_mesh".into(),
        },
    ];

    let prepare_seed = profile.seed;
    // Mesh baseline power/area, measured once at its own class clock.
    #[allow(clippy::type_complexity)]
    let mesh: Arc<OnceLock<(PowerReport, AreaReport)>> = Arc::new(OnceLock::new());

    Figure::new(spec, HEADER, move |cell: &Cell<'_>| {
        let power_cfg = PowerConfig::default();
        let workload = cell.workload.as_ref().expect("measure workload");
        let (mesh_power, mesh_area) = mesh.get_or_init(|| {
            let mesh = EvaluatedNetwork::prepare(
                &expert::mesh(&cell.candidate.layout),
                RoutingScheme::Ndbt,
                VC_BUDGET,
                prepare_seed,
            )
            .expect("mesh is routable");
            let cfg = workload.sim.resolve(mesh.topology.class());
            let report = mesh.measure(TrafficPattern::UniformRandom, &cfg, OPERATING_LOAD);
            (
                power_report_from_activity(&mesh.topology, &power_cfg, &cfg, &report.activity),
                area_report(&mesh.topology, &power_cfg),
            )
        });
        let network = cell.candidate.network();
        let cfg = cell.sim_config();
        let report = network.measure(workload.pattern().clone(), &cfg, OPERATING_LOAD);
        let power =
            power_report_from_activity(&network.topology, &power_cfg, &cfg, &report.activity);
        let area = area_report(&network.topology, &power_cfg);
        vec![Row::new()
            .str(network.topology.name())
            .str(cell.candidate.class.name())
            .float(report.activity.avg_link_utilization(), 4)
            .float(relative_to(power.static_mw, mesh_power.static_mw), 3)
            .float(relative_to(power.dynamic_mw, mesh_power.dynamic_mw), 3)
            .float(relative_to(power.total_mw(), mesh_power.total_mw()), 3)
            .float(relative_to(area.router_mm2, mesh_area.router_mm2), 3)
            .float(relative_to(area.wire_mm2, mesh_area.wire_mm2), 3)
            .float(relative_to(area.total_mm2(), mesh_area.total_mm2()), 3)]
    })
}
