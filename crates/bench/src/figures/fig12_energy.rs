//! Figure 12 (beyond the paper): energy-policy comparison across expert
//! and machine-discovered topologies under measured traffic.
//!
//! For every topology × traffic pattern × operating load, the harness
//! measures per-link activity with the cycle-driven simulator and then
//! evaluates three energy-management policies on that measurement:
//! always-on (baseline), link sleep (power-gate under-utilized links,
//! verified to keep the gated sub-topology connected and deadlock-free)
//! and DVFS (clock/voltage scaling to the measured load).  The NetSmith
//! line-up gains an `NS-EnergyOp` topology synthesized with the energy
//! objective.
//!
//! The declared assertions encode the headline property: at the lowest
//! load, link sleep burns strictly less total power than always-on on
//! every configuration, and every configuration remains routable.

use super::classes;
use netsmith::energy::{standard_policies, EnergyConfig, EnergyReport};
use netsmith_exp::prelude::*;
use netsmith_system::parsec_suite;
use netsmith_topo::traffic::TrafficPattern;

/// The idle threshold used by the link-sleep policy: links busy less than
/// this fraction of the measurement window are gating candidates.
const IDLE_THRESHOLD: f64 = 0.12;

/// The low point must be genuinely idle (sparse topologies keep their few
/// links busy even at 5% load); the high point sits below saturation for
/// every topology in the line-up.
const LOADS: [f64; 2] = [0.02, 0.3];

pub fn header() -> String {
    format!(
        "class,topology,routing,pattern,load,{}",
        EnergyReport::csv_header()
    )
}

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig12_energy");
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::ExpertBaselines,
        CandidateSpec::synth(ObjectiveSpec::EnergyOp { edp_weight: 25.0 }),
    ];
    let sim = if profile.quick {
        SimProfile::ClassWithWindows {
            warmup: 500,
            measure: 3_000,
            drain: 1_500,
        }
    } else {
        SimProfile::ClassDefault
    };
    // Traffic: uniform and shuffle everywhere, plus PARSEC-derived hotspot
    // mixtures (the least and most network-bound benchmarks) in the full
    // run.
    let mut workloads = vec![
        WorkloadSpec::new(TrafficPattern::UniformRandom, LOADS.to_vec(), sim)
            .labeled("uniform_random"),
        WorkloadSpec::new(TrafficPattern::Shuffle, LOADS.to_vec(), sim).labeled("shuffle"),
    ];
    if !profile.quick {
        let layout = LayoutSpec::Noi4x5.layout();
        for workload in parsec_suite() {
            if workload.name == "swaptions" || workload.name == "canneal" {
                workloads.push(
                    WorkloadSpec::new(workload.traffic_pattern(&layout), LOADS.to_vec(), sim)
                        .labeled(&format!("parsec_{}", workload.name)),
                );
            }
        }
    }
    spec.workloads = workloads;
    spec.assertions = vec![
        Assertion::MinRows { count: 12 },
        Assertion::ColumnAllTrue {
            column: "routable".into(),
        },
        // The headline result: link sleep strictly beats always-on on every
        // (class, topology, pattern) configuration at the lowest load.
        Assertion::GroupedLess {
            keys: vec!["class".into(), "topology".into(), "pattern".into()],
            pivot: "policy".into(),
            lesser: "link_sleep".into(),
            greater: "always_on".into(),
            column: "total_mw".into(),
            filters: vec![("load".into(), format!("{:.2}", LOADS[0]))],
        },
    ];
    Figure::new(spec, &header(), |cell: &Cell<'_>| {
        let network = cell.candidate.network();
        let workload = cell.workload.as_ref().expect("measured workload");
        let sim_cfg = cell.sim_config();
        let energy_cfg = EnergyConfig::default();
        let mut rows = Vec::new();
        for &load in &workload.loads {
            let report = network.measure(workload.pattern().clone(), &sim_cfg, load);
            for policy in standard_policies(IDLE_THRESHOLD) {
                let energy = network.energy_report(policy.as_ref(), &sim_cfg, &report, &energy_cfg);
                rows.push(
                    Row::new()
                        .str(cell.candidate.class.name())
                        .str(network.topology.name())
                        .str(network.scheme.label())
                        .str(workload.name())
                        .float(load, 2)
                        .raw(energy.to_csv_row()),
                );
            }
        }
        eprintln!(
            "# {}/{} under {}: measured activity drives the policies",
            cell.candidate.class.name(),
            network.label(),
            workload.name()
        );
        rows
    })
}
