//! Figure 5: solver progress — the objective-bounds gap narrowing over
//! time — for the latency-optimized (LatOp) search on the 20-router (a),
//! 30-router (b) and 48-router (c) layouts, for each link-length class.
//!
//! The paper runs Gurobi for minutes (20 routers) to days (48 routers); the
//! reproduction's annealing engine runs for seconds to minutes, but the
//! qualitative shape is the same: small classes converge to (near-)zero gap
//! quickly, large classes plateau at a residual gap yet still beat every
//! expert design.

use super::classes;
use netsmith_exp::prelude::*;

pub const HEADER: &str = "layout,class,elapsed_ms,incumbent_avg_hops,bound_avg_hops,gap";

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig05_solver_progress");
    spec.layouts = if profile.quick {
        vec![LayoutSpec::Noi4x5]
    } else {
        vec![LayoutSpec::Noi4x5, LayoutSpec::Noi6x5, LayoutSpec::Noi8x6]
    };
    spec.classes = classes(profile);
    spec.candidates = vec![CandidateSpec::synth(ObjectiveSpec::LatOp)];
    spec.assertions = vec![
        Assertion::MinRows { count: 1 },
        Assertion::ColumnPositive {
            column: "incumbent_avg_hops".into(),
        },
    ];
    Figure::new(spec, HEADER, |cell: &Cell<'_>| {
        let discovery = cell.candidate.discovery.as_ref().expect("synth candidate");
        let n = cell.candidate.layout.num_routers() as f64;
        let pairs = n * (n - 1.0);
        let label = cell.candidate.layout_spec.label();
        let class = cell.candidate.class;
        eprintln!(
            "# {label} {}: final gap {:.1}% (avg hops {:.3}, bound {:.3})",
            class.name(),
            discovery.gap * 100.0,
            discovery.objective.average_hops,
            discovery.bound / pairs
        );
        discovery
            .progress
            .samples()
            .iter()
            .map(|s| {
                Row::new()
                    .str(label)
                    .str(class.name())
                    .float(s.elapsed.as_secs_f64() * 1e3, 1)
                    .float(s.incumbent / pairs, 4)
                    .float(s.bound / pairs, 4)
                    .float(s.gap, 4)
            })
            .collect()
    })
}
