//! Figure 16: lifetime serving comparison.  An expert baseline and an
//! NS-synthesized fabric each serve a long diurnal horizon — time-varying
//! offered load with ON/OFF bursts, permanent faults landing from a fixed
//! Poisson tape and repaired online — under the three online policies
//! (always-on, link-sleep, DVFS) re-decided every epoch from the previous
//! epoch's measured activity.  Columns report SLA-level metrics:
//! availability, energy per delivered flit (whole horizon and low-load
//! epochs only), and horizon-exact p95/p99 latency from the merged
//! per-epoch histograms.  The headline assertion is the serving analogue
//! of fig12's: link-sleep beats always-on on low-load energy per flit
//! without giving up availability.

use super::classes;
use netsmith::serve::{serve, LoadSpec, PolicyKind, ServingConfig, ServingInputs, TapeSpec};
use netsmith_exp::prelude::*;
use netsmith_exp::ServingSpec;

pub const HEADER: &str = "class,topology,routing,policy,epochs,faults,repairs_ok,\
downtime_epochs,availability,pj_per_flit,low_load_pj_per_flit,\
p95_cycles,p99_cycles,p95_ns,p99_ns";

/// Idle threshold of the link-sleep policy (as fig12).
const IDLE_THRESHOLD: f64 = 0.12;

/// Availability a policy may lose to the always-on baseline before the
/// figure fails: one percentage point over the horizon.
const AVAILABILITY_SLACK: f64 = 0.01;

/// The serving horizon: ≥200 epochs even under `--quick` so the diurnal
/// cycle repeats and the fault tape always lands at least one fault.
fn serving_spec(profile: &RunProfile) -> ServingSpec {
    ServingSpec {
        epochs: if profile.quick { 224 } else { 448 },
        period_epochs: 96,
        expected_faults: 2.0,
        low_load_threshold: IDLE_THRESHOLD,
        seed: 0x05E7_EF16,
        tape_seed: 0x0FA1_7F16,
    }
}

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig16_serving");
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::expert("folded-torus"),
        CandidateSpec::synth(ObjectiveSpec::LatOp),
    ];
    // Short per-epoch windows: a serving cell runs one compiled segment
    // per epoch, so the horizon — not the window — supplies the samples.
    let sim = if profile.quick {
        SimProfile::ClassWithWindows {
            warmup: 100,
            measure: 400,
            drain: 200,
        }
    } else {
        SimProfile::ClassWithWindows {
            warmup: 200,
            measure: 800,
            drain: 400,
        }
    };
    spec.workloads = vec![WorkloadSpec::serving(serving_spec(profile), sim)];
    spec.assertions = vec![
        Assertion::MinRows { count: 6 },
        Assertion::ColumnPositive {
            column: "pj_per_flit".into(),
        },
        Assertion::ColumnPositive {
            column: "p99_cycles".into(),
        },
        // The headline: closed-loop link sleep spends less energy per
        // delivered flit than always-on over the low-load epochs of the
        // same horizon, on every fabric.
        Assertion::GroupedLess {
            keys: vec!["class".into(), "topology".into()],
            pivot: "policy".into(),
            lesser: "link_sleep".into(),
            greater: "always_on".into(),
            column: "low_load_pj_per_flit".into(),
            filters: vec![],
        },
    ];
    Figure::new(spec, HEADER, measure).with_check(|output: &RunOutput, _runner| {
        let get = |row: usize, col: &str| -> Result<f64, String> {
            output
                .value(row, col)
                .ok_or_else(|| format!("fig16_serving: row {row} missing {col}"))?
                .parse::<f64>()
                .map_err(|e| format!("fig16_serving: row {row} {col}: {e}"))
        };
        // Availability floor: link-sleep may not buy its energy savings
        // with availability (DVFS is exempt — downclocking legitimately
        // runs the fabric closer to saturation and reports the cost in
        // its own row), and every horizon is long enough to exercise the
        // lifetime machinery.
        let mut always_on: Vec<(String, f64)> = Vec::new();
        for (i, row) in output.rows.iter().enumerate() {
            let _ = row;
            let key = format!(
                "{}/{}",
                output.value(i, "class").unwrap_or_default(),
                output.value(i, "topology").unwrap_or_default()
            );
            if get(i, "epochs")? < 200.0 {
                return Err(format!(
                    "fig16_serving: horizon shorter than 200 epochs in {key}"
                ));
            }
            if get(i, "faults")? < 1.0 {
                return Err(format!("fig16_serving: no fault ever landed in {key}"));
            }
            if output.value(i, "policy").as_deref() == Some("always_on") {
                always_on.push((key, get(i, "availability")?));
            }
        }
        for (i, _) in output.rows.iter().enumerate() {
            if output.value(i, "policy").as_deref() != Some("link_sleep") {
                continue;
            }
            let key = format!(
                "{}/{}",
                output.value(i, "class").unwrap_or_default(),
                output.value(i, "topology").unwrap_or_default()
            );
            let availability = get(i, "availability")?;
            let baseline = always_on
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, a)| a)
                .ok_or_else(|| format!("fig16_serving: no always_on row for {key}"))?;
            if availability < baseline - AVAILABILITY_SLACK {
                return Err(format!(
                    "fig16_serving: {} lost availability in {key}: {availability:.4} < {:.4}",
                    output.value(i, "policy").unwrap_or_default(),
                    baseline - AVAILABILITY_SLACK,
                ));
            }
        }
        Ok(())
    })
}

fn measure(cell: &Cell<'_>) -> Vec<Row> {
    let network = cell.candidate.network();
    let workload = cell.workload.as_ref().expect("serving workload");
    let spec = workload
        .serving_spec()
        .expect("fig16 workloads are serving horizons");
    let sim = cell.sim_config();
    let base = ServingConfig {
        epochs: spec.epochs,
        load: LoadSpec {
            period_epochs: spec.epochs.min(spec.period_epochs),
            ..LoadSpec::default()
        },
        tape: TapeSpec {
            expected_faults: spec.expected_faults,
            seed: spec.tape_seed,
        },
        sim: sim.clone(),
        low_load_threshold: spec.low_load_threshold,
        seed: spec.seed,
        ..ServingConfig::default()
    };
    eprintln!(
        "# {}/{}: serving {} epochs x {} policies",
        cell.candidate.class.name(),
        network.label(),
        spec.epochs,
        PolicyKind::standard(IDLE_THRESHOLD).len()
    );
    PolicyKind::standard(IDLE_THRESHOLD)
        .into_iter()
        .map(|policy| {
            let config = ServingConfig {
                policy,
                ..base.clone()
            };
            let report = serve(
                &ServingInputs::new(&network.topology, &network.routing, &network.vcs),
                &config,
                cell.obs(),
            );
            Row::new()
                .str(cell.candidate.class.name())
                .str(network.topology.name())
                .str(network.scheme.label())
                .str(&report.policy)
                .int(report.epochs as i64)
                .int(report.faults_injected as i64)
                .int(report.repairs_ok as i64)
                .int(report.downtime_epochs as i64)
                .float(report.availability, 4)
                .float(report.energy_per_flit_pj, 2)
                .float(report.low_load_energy_per_flit_pj, 2)
                .float(report.p95_latency_cycles, 1)
                .float(report.p99_latency_cycles, 1)
                .float(report.percentile_ns(0.95, sim.clock_ghz), 2)
                .float(report.percentile_ns(0.99, sim.clock_ghz), 2)
        })
        .collect()
}
