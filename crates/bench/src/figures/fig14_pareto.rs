//! Figure 14 (beyond the paper): Pareto synthesis over latency × energy ×
//! resilience.
//!
//! The composable objective framework makes multi-criteria synthesis a
//! first-class workload: any non-negative weighting of objective terms is
//! itself an objective.  This harness sweeps a grid of weight vectors
//! `(w_lat, w_energy, w_fault)` over the three single-objective axes,
//! synthesizes one topology per weight point, scores every discovered
//! topology on all three axes, and prints the resulting trade-off surface
//! as CSV with a non-dominated (Pareto front) flag per row.
//!
//! Mixed weight points normalize each axis by the mesh baseline's score so
//! a unit of weight means roughly "one mesh" on every axis; pure corner
//! points use the axis objective's own decomposition verbatim — which
//! makes the corner discoveries *cache hits* against the single-objective
//! candidates (same decomposition, seed and budget ⇒ same cache key), the
//! property the check verifies bit-for-bit.

use netsmith::gen::Objective;
use netsmith::prelude::expert;
use netsmith_exp::prelude::*;
use netsmith_topo::resilience::{critical_link_pairs, min_directional_degree};
use netsmith_topo::Layout;
use std::sync::{Arc, Mutex};

pub const HEADER: &str = "w_lat,w_energy,w_fault,topology,links,avg_hops,lat_score,energy_score,fault_score,critical_links,min_dir_degree,on_front";

/// EDP weight of the energy axis (the `fig12_energy` proxy setting).
const EDP_WEIGHT: f64 = 5.0;

fn axis_specs() -> [ObjectiveSpec; 3] {
    [
        ObjectiveSpec::LatOp,
        ObjectiveSpec::EnergyOp {
            edp_weight: EDP_WEIGHT,
        },
        ObjectiveSpec::FaultOp,
    ]
}

/// The composite spec for one weight vector.  Corners reuse the axis
/// decomposition verbatim; mixed points scale each axis by `weight / norm`.
fn composite_spec(weights: [f64; 3], norms: [f64; 3]) -> ObjectiveSpec {
    let axes = axis_specs();
    let parts: Vec<(f64, ObjectiveSpec)> = (0..3)
        .filter(|&i| weights[i] > 0.0)
        .map(|i| {
            let scale = if weights.iter().filter(|&&w| w > 0.0).count() == 1 {
                1.0
            } else {
                weights[i] / norms[i]
            };
            (scale, axes[i].clone())
        })
        .collect();
    assert!(!parts.is_empty(), "all-zero weight vector");
    ObjectiveSpec::Composite { parts }
}

/// `p` dominates `q` when it is no worse on every axis and strictly better
/// on at least one (all scores are minimized).
fn dominates(p: &[f64; 3], q: &[f64; 3]) -> bool {
    let eps = 1e-9;
    p.iter().zip(q.iter()).all(|(a, b)| *a <= b + eps)
        && p.iter().zip(q.iter()).any(|(a, b)| *a < b - eps)
}

pub fn figure(profile: &RunProfile) -> Figure {
    let layout = Layout::noi_4x5();
    let axes: [Objective; 3] = axis_specs().map(|spec| spec.resolve(&layout));

    // Mesh-baseline normalization so mixed weights mean "meshes per axis".
    let mesh = expert::mesh(&layout);
    let norms = axes
        .clone()
        .map(|o| o.evaluate(&mesh).score.abs().max(f64::MIN_POSITIVE));

    let corner_points: [[f64; 3]; 3] = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
    let mut weight_grid: Vec<[f64; 3]> = corner_points.to_vec();
    weight_grid.push([1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
    if !profile.quick {
        weight_grid.extend([
            [0.5, 0.5, 0.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.5, 0.5],
            [0.6, 0.2, 0.2],
            [0.2, 0.6, 0.2],
            [0.2, 0.2, 0.6],
        ]);
    }

    let mut spec = ExperimentSpec::new("fig14_pareto");
    spec.classes = vec![LinkClass::Medium];
    spec.candidates = weight_grid
        .iter()
        .map(|&weights| CandidateSpec::synth(composite_spec(weights, norms)))
        .collect();
    spec.assertions = vec![Assertion::MinRows {
        count: weight_grid.len(),
    }];

    // Full-precision axis scores per weight point, shared between the
    // measurement, the Pareto post-processing pass and the check.
    let scores: Arc<Mutex<Vec<Option<[f64; 3]>>>> =
        Arc::new(Mutex::new(vec![None; weight_grid.len()]));

    let measure_axes = axes.clone();
    let measure_grid = weight_grid.clone();
    let measure_scores = Arc::clone(&scores);
    let post_scores = Arc::clone(&scores);
    let check_axes = axes;
    let check_grid = weight_grid;
    let check_scores = scores;

    Figure::new(spec, HEADER, move |cell: &Cell<'_>| {
        let topo = &*cell.candidate.topology;
        let [wl, we, wf] = measure_grid[cell.candidate_index];
        let axis_scores: [f64; 3] = measure_axes.clone().map(|o| o.evaluate(topo).score);
        measure_scores.lock().unwrap()[cell.candidate_index] = Some(axis_scores);
        let [ls, es, fs] = axis_scores;
        vec![Row::new()
            .float(wl, 3)
            .float(we, 3)
            .float(wf, 3)
            .str(topo.name())
            .int(topo.num_links() as i64)
            .float(netsmith_topo::metrics::average_hops(topo), 3)
            .float(ls, 3)
            .float(es, 3)
            .float(fs, 3)
            .int(critical_link_pairs(topo).len() as i64)
            .int(min_directional_degree(topo) as i64)]
    })
    .with_postprocess(move |rows: &mut Vec<Row>| {
        // The Pareto flag is a cross-row column: appended once every weight
        // point has been scored.
        let scores = post_scores.lock().unwrap();
        let all: Vec<[f64; 3]> = scores.iter().map(|s| s.expect("cell scored")).collect();
        for (row, p) in rows.iter_mut().zip(&all) {
            let on_front = !all.iter().any(|q| dominates(q, p));
            row.push(netsmith_exp::Value::Bool(on_front));
        }
    })
    .with_check(move |output: &RunOutput, runner: &Runner<'_>| {
        // Assertion 1: pure corners are bit-identical to the
        // single-objective winners.  The corner composite shares the axis
        // objective's decomposition, seed and budget, so resolving the
        // single-objective candidate through the same cache must hit the
        // corner's entry — same Arc, same adjacency, same axis score.
        let discoveries_before = runner.cache.discoveries();
        for (axis, spec) in axis_specs().iter().enumerate() {
            let corner_index = check_grid
                .iter()
                .position(|w| w[axis] == 1.0)
                .expect("corner in grid");
            let winner = runner.resolve_synth(LayoutSpec::Noi4x5, LinkClass::Medium, spec, false);
            let corner = &output.candidates[corner_index];
            if winner.topology.adjacency() != corner.topology.adjacency() {
                return Err(format!(
                    "corner {axis} diverged from the single-objective winner {}",
                    winner.topology.name()
                ));
            }
            let winner_score = check_axes[axis].evaluate(&winner.topology).score;
            let corner_score = check_scores.lock().unwrap()[corner_index].expect("scored")[axis];
            if (corner_score - winner_score).abs() > 1e-9 {
                return Err(format!(
                    "corner {axis}: composite score {corner_score} != single-objective {winner_score}"
                ));
            }
            eprintln!(
                "# corner {axis} recovers {} (axis score {winner_score:.3})",
                winner.topology.name()
            );
        }
        if runner.cache.discoveries() != discoveries_before {
            return Err(
                "single-objective winners were re-discovered: corner cache keys diverged".into(),
            );
        }

        // Assertion 2: the reported front is non-empty and mutually
        // non-dominated.
        let scores = check_scores.lock().unwrap();
        let all: Vec<[f64; 3]> = scores.iter().map(|s| s.expect("scored")).collect();
        let front: Vec<&[f64; 3]> = all
            .iter()
            .filter(|p| !all.iter().any(|q| dominates(q, p)))
            .collect();
        if front.is_empty() {
            return Err("empty Pareto front".into());
        }
        for a in &front {
            for b in &front {
                if dominates(a, b) {
                    return Err(format!("front point {a:?} dominates front point {b:?}"));
                }
            }
        }
        eprintln!(
            "# Pareto front: {}/{} weight points non-dominated over (latency, energy, resilience)",
            front.len(),
            all.len()
        );
        Ok(())
    })
}
