//! Figure 11: synthetic uniform-random traffic on the 48-router (8x6)
//! interposer — the scalability study.  Expert topologies that have a
//! published scaling rule are extended to 8x6 (Kite-Large does not scale to
//! even column counts, LPBT fails to produce connected graphs — the paper
//! makes the same exclusions); NetSmith topologies are regenerated for the
//! larger layout.

use super::{classes, sweep_loads};
use netsmith_exp::prelude::*;
use netsmith_topo::traffic::TrafficPattern;

pub const HEADER: &str = "class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated";

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig11_scale48");
    spec.layouts = vec![LayoutSpec::Noi8x6];
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::expert_in("mesh", LinkClass::Small),
        CandidateSpec::expert_in("kite-small", LinkClass::Small),
        CandidateSpec::expert_in("folded-torus", LinkClass::Medium),
        CandidateSpec::expert_in("kite-medium", LinkClass::Medium),
        CandidateSpec::expert_in("butter-donut", LinkClass::Large),
        CandidateSpec::expert_in("double-butterfly", LinkClass::Large),
        CandidateSpec::synth(ObjectiveSpec::LatOp),
    ];
    let sim = if profile.quick {
        SimProfile::QuickClassClock
    } else {
        SimProfile::ClassDefault
    };
    spec.workloads = vec![WorkloadSpec::new(
        TrafficPattern::UniformRandom,
        sweep_loads(profile),
        sim,
    )];
    spec.assertions = vec![
        Assertion::MinRows { count: 6 },
        Assertion::ColumnPositive {
            column: "latency_ns".into(),
        },
    ];
    Figure::new(spec, HEADER, |cell: &Cell<'_>| {
        let network = cell.candidate.network();
        let workload = cell.workload.as_ref().expect("sweep workload");
        let config = cell.sim_config();
        let curve = network.sweep(workload.pattern().clone(), &config, &workload.loads);
        eprintln!(
            "# 48-router {}/{}: saturation {:.3} packets/node/ns",
            cell.candidate.class.name(),
            network.label(),
            curve.saturation_packets_per_ns(&config)
        );
        curve
            .points
            .iter()
            .map(|p| {
                Row::new()
                    .str(cell.candidate.class.name())
                    .str(network.topology.name())
                    .str(network.scheme.label())
                    .float(p.offered, 3)
                    .float(p.accepted_packets_per_ns, 4)
                    .float(p.latency_ns, 2)
                    .bool(p.saturated)
            })
            .collect()
    })
}
