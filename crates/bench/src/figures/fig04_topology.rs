//! Figure 4: an example latency-optimized NetSmith medium topology, printed
//! as Graphviz DOT with the sparsest-cut partition coloured (red vs blue)
//! and bidirectional/unidirectional links drawn solid/dashed, plus the
//! adjacency listing and link-span histogram on stderr.

use netsmith_exp::prelude::*;
use netsmith_topo::{cuts, viz};

pub fn figure(_profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig04_topology");
    spec.classes = vec![LinkClass::Medium];
    spec.candidates = vec![CandidateSpec::synth(ObjectiveSpec::LatOp)];
    spec.assertions = vec![Assertion::MinRows { count: 1 }];
    Figure::new(spec, "dot", |cell: &Cell<'_>| {
        let topo = &*cell.candidate.topology;
        let discovery = cell.candidate.discovery.as_ref().expect("synth candidate");
        let cut = cuts::sparsest_cut(topo);
        eprintln!("# adjacency listing:\n{}", viz::adjacency_listing(topo));
        eprintln!("# link span histogram: {:?}", topo.link_span_histogram());
        eprintln!(
            "# sparsest cut: {} fwd / {} bwd crossing links over partition {:?} (bisection: {})",
            cut.crossing_forward, cut.crossing_backward, cut.partition, cut.is_bisection
        );
        eprintln!(
            "# avg hops {:.3}, links {}, symmetric: {}",
            discovery.objective.average_hops,
            topo.num_links(),
            topo.is_symmetric()
        );
        vec![Row::new().raw(viz::to_dot(topo, Some(&cut)))]
    })
    .with_output(OutputMode::Raw)
}
