//! Ablation (paper Section III-B and III-A(c)): asymmetric vs symmetric
//! links.  The paper reports that forcing symmetric links loses under 3%
//! average hops and nothing in bandwidth, while asymmetric links buy ~3%
//! throughput; this harness regenerates both variants for every class and
//! prints the comparison.  The symmetric twin is resolved through the same
//! suite cache (keyed separately by the symmetric-links flag).

use super::classes;
use netsmith_exp::prelude::*;
use netsmith_topo::cuts;

pub const HEADER: &str = "class,objective,links,avg_hops_asymmetric,avg_hops_symmetric,hops_penalty_pct,cut_asymmetric,cut_symmetric";

pub fn figure(profile: &RunProfile) -> Figure {
    let objectives = if profile.quick {
        vec![ObjectiveSpec::LatOp]
    } else {
        vec![ObjectiveSpec::LatOp, ObjectiveSpec::SCOp]
    };
    let mut spec = ExperimentSpec::new("ablation_symmetry");
    spec.classes = classes(profile);
    spec.candidates = objectives.into_iter().map(CandidateSpec::synth).collect();
    spec.assertions = vec![
        Assertion::MinRows { count: 1 },
        Assertion::ColumnPositive {
            column: "avg_hops_symmetric".into(),
        },
    ];
    Figure::new(spec, HEADER, |cell: &Cell<'_>| {
        let objective = cell.candidate.objective.as_ref().expect("synth candidate");
        let label = match objective {
            ObjectiveSpec::LatOp => "LatOp",
            ObjectiveSpec::SCOp => "SCOp",
            other => panic!("unexpected ablation objective {other:?}"),
        };
        let base = cell.candidate.discovery.as_ref().expect("synth candidate");
        // The symmetric-links twin, discovered through the shared cache.
        let sym = cell.runner.resolve_synth(
            cell.candidate.layout_spec,
            cell.candidate.class,
            objective,
            true,
        );
        let sym = sym.discovery.as_ref().expect("synth candidate").clone();
        let cut_a = cuts::sparsest_cut(&cell.candidate.topology).normalized_bandwidth;
        let cut_s = cuts::sparsest_cut(&sym.topology).normalized_bandwidth;
        vec![Row::new()
            .str(cell.candidate.class.name())
            .str(label)
            .int(cell.candidate.topology.num_links() as i64)
            .float(base.objective.average_hops, 3)
            .float(sym.objective.average_hops, 3)
            .float(
                (sym.objective.average_hops / base.objective.average_hops - 1.0) * 100.0,
                2,
            )
            .float(cut_a, 4)
            .float(cut_s, 4)]
    })
}
