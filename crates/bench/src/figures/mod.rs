//! Figure definitions: one module per figure/table binary, each exposing
//! `figure(&RunProfile) -> Figure` — the declarative experiment spec plus
//! the figure's measurement code and assertions.
//!
//! The modules keep the CSV schemas of the original hand-rolled binaries
//! column-for-column (guarded by a golden-header test), so captured
//! results remain comparable across the port.

use netsmith_exp::cli::FigureEntry;
use netsmith_exp::RunProfile;
use netsmith_topo::LinkClass;

pub mod ablation_symmetry;
pub mod fig01_scatter;
pub mod fig04_topology;
pub mod fig05_solver_progress;
pub mod fig06_synthetic;
pub mod fig07_routing_isolation;
pub mod fig08_parsec;
pub mod fig09_power_area;
pub mod fig10_shuffle;
pub mod fig11_scale48;
pub mod fig12_energy;
pub mod fig13_resilience;
pub mod fig14_pareto;
pub mod fig15_trace;
pub mod fig16_serving;
pub mod table02_metrics;

/// Every registered figure, in run order.
pub const ALL: &[FigureEntry] = &[
    ("fig01_scatter", fig01_scatter::figure),
    ("fig04_topology", fig04_topology::figure),
    ("fig05_solver_progress", fig05_solver_progress::figure),
    ("fig06_synthetic", fig06_synthetic::figure),
    ("fig07_routing_isolation", fig07_routing_isolation::figure),
    ("fig08_parsec", fig08_parsec::figure),
    ("fig09_power_area", fig09_power_area::figure),
    ("fig10_shuffle", fig10_shuffle::figure),
    ("fig11_scale48", fig11_scale48::figure),
    ("fig12_energy", fig12_energy::figure),
    ("fig13_resilience", fig13_resilience::figure),
    ("fig14_pareto", fig14_pareto::figure),
    ("fig15_trace", fig15_trace::figure),
    ("fig16_serving", fig16_serving::figure),
    ("table02_metrics", table02_metrics::figure),
    ("ablation_symmetry", ablation_symmetry::figure),
];

/// The classes a profile sweeps: the full standard trio, or medium only
/// under `--quick` (the CI smoke restriction every legacy `--quick` flag
/// applied).
pub fn classes(profile: &RunProfile) -> Vec<LinkClass> {
    if profile.quick {
        vec![LinkClass::Medium]
    } else {
        LinkClass::STANDARD.to_vec()
    }
}

/// The sweep load grid: the full default grid, or a three-point smoke grid
/// under `--quick`.
pub fn sweep_loads(profile: &RunProfile) -> Vec<f64> {
    if profile.quick {
        vec![0.05, 0.2, 0.35]
    } else {
        crate::load_grid()
    }
}
