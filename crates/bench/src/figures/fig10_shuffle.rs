//! Figure 10: latency/throughput under the gem5 "shuffle" permutation for
//! the 20-router NoIs, including the shuffle-optimized NetSmith topology
//! ("NS ShufOpt") generated with the pattern-weighted objective.

use super::{classes, sweep_loads};
use netsmith_exp::prelude::*;
use netsmith_topo::traffic::TrafficPattern;

pub const HEADER: &str = "class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated";

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig10_shuffle");
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::ExpertBaselines,
        CandidateSpec::synth(ObjectiveSpec::LatOp),
        CandidateSpec::synth(ObjectiveSpec::SCOp),
        CandidateSpec::synth(ObjectiveSpec::PatternLatOp {
            pattern: TrafficPattern::Shuffle,
        }),
    ];
    let sim = if profile.quick {
        SimProfile::QuickClassClock
    } else {
        SimProfile::ClassDefault
    };
    spec.workloads = vec![WorkloadSpec::new(
        TrafficPattern::Shuffle,
        sweep_loads(profile),
        sim,
    )];
    spec.assertions = vec![
        Assertion::MinRows { count: 8 },
        Assertion::ColumnPositive {
            column: "latency_ns".into(),
        },
    ];
    Figure::new(spec, HEADER, |cell: &Cell<'_>| {
        let network = cell.candidate.network();
        let workload = cell.workload.as_ref().expect("sweep workload");
        let config = cell.sim_config();
        let curve = network.sweep(workload.pattern().clone(), &config, &workload.loads);
        eprintln!(
            "# {}/{}: shuffle saturation {:.3} packets/node/ns",
            cell.candidate.class.name(),
            network.label(),
            curve.saturation_packets_per_ns(&config)
        );
        curve
            .points
            .iter()
            .map(|p| {
                Row::new()
                    .str(cell.candidate.class.name())
                    .str(network.topology.name())
                    .str(network.scheme.label())
                    .float(p.offered, 3)
                    .float(p.accepted_packets_per_ns, 4)
                    .float(p.latency_ns, 2)
                    .bool(p.saturated)
            })
            .collect()
    })
}
