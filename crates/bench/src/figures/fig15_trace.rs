//! Figure 15: trace-driven workloads for the 20-router NoIs.  Two
//! generated traces — GC/pointer-chasing phases and ON/OFF bursty hotspot
//! traffic — are replayed deterministically (stretched to each offered
//! load) through an expert baseline, NS-LatOp, and NS-TraceLatOp, a
//! topology synthesized against the demand matrix extracted from the
//! bursty trace itself.  Columns report tail latency (p95/p99) and the
//! delivered fraction alongside the mean, because bursty traffic degrades
//! the tail long before the mean saturates.

use super::{classes, sweep_loads};
use netsmith_exp::prelude::*;
use netsmith_obs::{Attr, Obs};
use netsmith_sim::EpochSeries;
use netsmith_trace::TraceStats;
use std::sync::Arc;

pub const HEADER: &str = "workload,class,topology,routing,offered,injected,\
delivered_fraction,latency_ns,p95_ns,p99_ns,saturated";

/// The trace horizon: long enough for multiple ON/OFF epochs and GC
/// phases, short enough that every sweep window wraps through several
/// replay waves.
const HORIZON: u64 = 4_096;

/// Seed for the generated traces (independent of the discovery seed so
/// the workload does not drift when `--seed` changes the synthesis).
const TRACE_SEED: u64 = 15;

/// The bursty hotspot trace: also the synthesis target of NS-TraceLatOp.
fn onoff_trace() -> TraceSpec {
    TraceSpec::generator("onoff-hotspot", HORIZON, TRACE_SEED)
}

fn pointer_chase_trace() -> TraceSpec {
    TraceSpec::generator("pointer-chase", HORIZON, TRACE_SEED)
}

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig15_trace");
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::expert("folded-torus"),
        CandidateSpec::synth(ObjectiveSpec::LatOp),
        CandidateSpec::synth(ObjectiveSpec::TraceLatOp {
            trace: onoff_trace(),
        }),
    ];
    let sim = if profile.quick {
        SimProfile::QuickClassClock
    } else {
        SimProfile::ClassDefault
    };
    let loads = sweep_loads(profile);
    spec.workloads = vec![
        WorkloadSpec::trace(pointer_chase_trace(), loads.clone(), sim),
        WorkloadSpec::trace(onoff_trace(), loads, sim),
    ];
    spec.assertions = vec![
        Assertion::MinRows { count: 12 },
        Assertion::ColumnPositive {
            column: "latency_ns".into(),
        },
        Assertion::ColumnPositive {
            column: "p99_ns".into(),
        },
    ];
    Figure::new(spec, HEADER, measure)
        .with_order(CellOrder::WorkloadMajor)
        .with_check(|_, _| {
            // The synthesis target must actually be skewed: the hottest
            // decile of destinations draws at least 3x its uniform share
            // (2 of 20 routers, uniform share 10%).  If the generator ever
            // regresses to near-uniform traffic, NS-TraceLatOp would
            // silently collapse into NS-LatOp.
            let trace = onoff_trace().resolve(20)?;
            let skew = TraceStats::of(&trace).top_decile_destination_share;
            if skew < 0.3 {
                return Err(format!(
                    "onoff-hotspot trace is not skewed enough: top-decile \
                     destination share {skew:.3} < 0.3"
                ));
            }
            Ok(())
        })
}

fn measure(cell: &Cell<'_>) -> Vec<Row> {
    let network = cell.candidate.network();
    // A trace-weighted objective resolves to `Objective::PatternLatOp`
    // (whose generated topologies are canonically named NS-ShufOpt after
    // the paper's pattern study), so label the trace-targeted candidate
    // by its spec instead.
    let topology = match &cell.candidate.objective {
        Some(ObjectiveSpec::TraceLatOp { .. }) => {
            format!("NS-TraceOpt-{}", cell.candidate.class.name())
        }
        _ => network.topology.name().to_string(),
    };
    let workload = cell.workload.as_ref().expect("trace workload");
    let trace_spec = workload.trace_spec().expect("fig15 workloads are traces");
    let trace = trace_spec
        .resolve(cell.candidate.layout.num_routers())
        .unwrap_or_else(|e| panic!("fig15_trace: {e}"));
    let mut config = cell.sim_config();
    let obs = cell.obs();
    if obs.enabled() {
        // Observed runs slice the measurement window into 8 epochs so the
        // event log carries a throughput/latency/occupancy time-series per
        // replay; unobserved runs keep the probe off (zero cost, and the
        // report is bit-identical either way).
        config.epoch_cycles = (config.measure_cycles / 8).max(1);
    }
    let sim = network
        .sim_builder()
        .trace(Arc::new(trace))
        .config(config.clone())
        .build();
    let zero = sim.zero_load_latency_cycles();
    eprintln!(
        "# {}/{}/{}: replaying {} loads",
        workload.name(),
        cell.candidate.class.name(),
        network.label(),
        workload.loads.len()
    );
    workload
        .loads
        .iter()
        .map(|&load| {
            let report = sim.run(load);
            if let Some(epochs) = &report.epochs {
                emit_epoch_series(obs, &workload.name(), &topology, cell, load, epochs);
            }
            Row::new()
                .str(workload.name())
                .str(cell.candidate.class.name())
                .str(&topology)
                .str(network.scheme.label())
                .float(load, 3)
                .float(report.injected_flits_per_node_cycle, 4)
                .float(report.delivered_fraction(), 4)
                .float(report.avg_latency_ns, 2)
                .float(config.cycles_to_ns(report.p95_latency_cycles), 2)
                .float(config.cycles_to_ns(report.p99_latency_cycles), 2)
                .bool(report.is_saturated(zero))
        })
        .collect()
}

/// Publish one replay's per-epoch probe as a `sim.epochs` series event,
/// keyed by workload, candidate and offered load.
fn emit_epoch_series(
    obs: &Obs,
    workload: &str,
    topology: &str,
    cell: &Cell<'_>,
    load: f64,
    epochs: &EpochSeries,
) {
    let rows = epochs
        .samples
        .iter()
        .map(|s| {
            vec![
                s.start_cycle as f64,
                s.end_cycle as f64,
                s.injected_flits as f64,
                s.accepted_flits as f64,
                s.packets_ejected as f64,
                s.mean_latency_cycles,
                s.p95_latency_cycles,
                s.buffered_flits as f64,
            ]
        })
        .collect();
    obs.series(
        "sim.epochs",
        vec![
            Attr::new("workload", workload),
            Attr::new("topology", topology),
            Attr::new("class", cell.candidate.class.name()),
            Attr::new("load", load),
            Attr::new("epoch_cycles", epochs.epoch_cycles),
        ],
        &[
            "start_cycle",
            "end_cycle",
            "injected_flits",
            "accepted_flits",
            "packets_ejected",
            "mean_latency_cycles",
            "p95_latency_cycles",
            "buffered_flits",
        ],
        rows,
    );
}
