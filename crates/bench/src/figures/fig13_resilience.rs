//! Figure 13 (beyond the paper): resilience under permanent faults across
//! expert and machine-discovered topologies.
//!
//! For every topology the harness builds the fault-scenario sets of the
//! study — every single link failure (exhaustive), sampled double link
//! failures, and single router failures — repairs each scenario with the
//! default re-route policy (fresh shortest paths + MCLB + escape VCs on
//! the surviving sub-topology, deadlock freedom verified), and reports
//! routability coverage plus unreachable-pair counts.  On a sampled
//! subset it also re-simulates the workload on the repaired fabric
//! (failed routers masked out of traffic generation) and reports degraded
//! saturation throughput and latency inflation against the healthy
//! baseline.  The NetSmith line-up gains an `NS-FaultOp` topology
//! synthesized with the fault-tolerance objective next to the latency-only
//! `NS-LatOp` baseline.
//!
//! The check asserts the headline properties: every single-link-failure
//! scenario on every `NS-FaultOp` topology re-routes deadlock-free (100%
//! coverage), and NS-FaultOp degrades at least as gracefully as the
//! latency-only baseline (mean structural coverage, never lower).

use super::classes;
use netsmith::fault::{
    single_link_scenarios, single_router_scenarios, FaultModel, FaultScenario, RerouteRepair,
    ResilienceConfig, ResilienceReport,
};
use netsmith_exp::prelude::*;
use netsmith_sim::SimConfig;
use netsmith_topo::resilience::critical_link_pairs;
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::Topology;

pub const HEADER: &str = "class,topology,routing,pattern,fault_set,scenarios,coverage,unreachable_pairs,baseline_sat,worst_sat,mean_sat,worst_retention,mean_latency_inflation,worst_latency_inflation";

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig13_resilience");
    spec.classes = classes(profile);
    spec.candidates = if profile.quick {
        vec![
            CandidateSpec::expert("mesh"),
            CandidateSpec::synth(ObjectiveSpec::LatOp),
            CandidateSpec::synth(ObjectiveSpec::FaultOp),
        ]
    } else {
        vec![
            CandidateSpec::ExpertBaselines,
            CandidateSpec::synth(ObjectiveSpec::LatOp),
            CandidateSpec::synth(ObjectiveSpec::FaultOp),
        ]
    };
    spec.assertions = vec![Assertion::MinRows { count: 8 }];
    Figure::new(spec, HEADER, measure).with_check(check)
}

/// The per-topology fault sets of the study, exhaustive where the space is
/// small and seeded samples elsewhere.
fn fault_sets(topo: &Topology, seed: u64, quick: bool) -> Vec<(&'static str, Vec<FaultScenario>)> {
    vec![
        ("1link", single_link_scenarios(topo)),
        (
            "2link",
            FaultModel::links(2, seed).sample_scenarios(topo, if quick { 3 } else { 10 }),
        ),
        (
            "1router",
            if quick {
                FaultModel {
                    link_faults: 0,
                    router_faults: 1,
                    seed,
                }
                .sample_scenarios(topo, 3)
            } else {
                single_router_scenarios(topo)
            },
        ),
    ]
}

fn report_row(cell: &Cell<'_>, pattern: &str, set_name: &str, report: &ResilienceReport) -> Row {
    let network = cell.candidate.network();
    Row::new()
        .str(cell.candidate.class.name())
        .str(network.topology.name())
        .str(network.scheme.label())
        .str(pattern)
        .str(set_name)
        .int(report.outcomes.len() as i64)
        .float(report.coverage(), 4)
        .int(report.total_unreachable_pairs() as i64)
        .opt_float(report.baseline_saturation_flits_per_node_cycle, 4)
        .opt_float(report.worst_saturation(), 4)
        .opt_float(report.mean_saturation(), 4)
        .opt_float(report.worst_saturation_retention(), 4)
        .opt_float(report.mean_latency_inflation(), 4)
        .opt_float(report.worst_latency_inflation(), 4)
}

fn measure(cell: &Cell<'_>) -> Vec<Row> {
    let quick = cell.profile().quick;
    let seed = cell.profile().seed;
    let network = cell.candidate.network();
    let topo = &network.topology;
    let mut sim_cfg = SimConfig::quick();
    sim_cfg.clock_ghz = cell.candidate.class.clock_ghz();
    let mut rows = Vec::new();

    // Structural pass: exhaustive repair verification over the full fault
    // sets (pattern-independent, so computed once).
    for (set_name, scenarios) in fault_sets(topo, seed, quick) {
        let report = network.resilience_report(
            &scenarios,
            &RerouteRepair,
            &ResilienceConfig {
                simulate: false,
                ..Default::default()
            },
        );
        rows.push(report_row(cell, "structural", set_name, &report));
    }

    // Measured pass: re-simulate a sampled scenario subset per traffic
    // pattern on the repaired fabrics.  Faulty scenarios only: the healthy
    // baseline is measured separately inside assess_resilience.
    let patterns: &[TrafficPattern] = if quick {
        &[TrafficPattern::UniformRandom]
    } else {
        &[TrafficPattern::UniformRandom, TrafficPattern::Shuffle]
    };
    for pattern in patterns {
        let sampled: Vec<FaultScenario> = {
            let count = if quick { 2 } else { 4 };
            let mut s = FaultModel::links(1, seed ^ 1).sample_scenarios(topo, count);
            if !quick {
                s.extend(FaultModel::links(2, seed ^ 2).sample_scenarios(topo, 3));
                s.extend(
                    FaultModel {
                        link_faults: 0,
                        router_faults: 1,
                        seed: seed ^ 3,
                    }
                    .sample_scenarios(topo, 3),
                );
            }
            s
        };
        let report = network.resilience_report(
            &sampled,
            &RerouteRepair,
            &ResilienceConfig {
                sim: sim_cfg.clone(),
                pattern: pattern.clone(),
                simulate: true,
                ..Default::default()
            },
        );
        rows.push(report_row(cell, &pattern.name(), "sampled", &report));
    }
    eprintln!(
        "# {}/{}: {} critical links",
        cell.candidate.class.name(),
        network.label(),
        critical_link_pairs(topo).len()
    );
    rows
}

fn check(output: &RunOutput, _runner: &Runner<'_>) -> Result<(), String> {
    // (class, topology, fault_set, coverage) of the structural rows.
    let mut structural: Vec<(String, String, String, f64)> = Vec::new();
    for row in 0..output.rows.len() {
        if output.value(row, "pattern").as_deref() == Some("structural") {
            structural.push((
                output.value(row, "class").unwrap(),
                output.value(row, "topology").unwrap(),
                output.value(row, "fault_set").unwrap(),
                output.float(row, "coverage").unwrap(),
            ));
        }
    }

    // 1. Every NS-FaultOp single-link-failure scenario re-routed
    //    deadlock-free: exhaustive coverage is exactly 1.0.
    let mut faultop_checked = 0usize;
    for (class, topo, set, coverage) in &structural {
        if topo.starts_with("NS-FaultOp") && set == "1link" {
            if (*coverage - 1.0).abs() > 1e-12 {
                return Err(format!(
                    "{class}/{topo}: single-link coverage {coverage} < 100%"
                ));
            }
            faultop_checked += 1;
        }
    }
    if faultop_checked == 0 {
        return Err("no NS-FaultOp topologies were checked".into());
    }

    // 2. Graceful degradation: per class, NS-FaultOp's mean coverage over
    //    the structural fault sets is never below the latency-only
    //    baseline's.
    let mut class_names: Vec<String> = structural.iter().map(|(c, ..)| c.clone()).collect();
    class_names.sort();
    class_names.dedup();
    for class in &class_names {
        let mean_for = |prefix: &str| -> Result<f64, String> {
            let values: Vec<f64> = structural
                .iter()
                .filter(|(c, t, _, _)| c == class && t.starts_with(prefix))
                .map(|(_, _, _, cov)| *cov)
                .collect();
            if values.is_empty() {
                return Err(format!("{class}: no {prefix} rows"));
            }
            Ok(values.iter().sum::<f64>() / values.len() as f64)
        };
        let faultop = mean_for("NS-FaultOp")?;
        let latop = mean_for("NS-LatOp")?;
        if faultop < latop - 1e-9 {
            return Err(format!(
                "{class}: NS-FaultOp coverage {faultop:.4} degrades worse than NS-LatOp {latop:.4}"
            ));
        }
        eprintln!(
            "# {class}: mean structural coverage NS-FaultOp {faultop:.4} vs NS-LatOp {latop:.4}"
        );
    }
    eprintln!(
        "# verified: {faultop_checked} NS-FaultOp configurations keep 100% single-link \
         routability, all repairs deadlock-free"
    );
    Ok(())
}
