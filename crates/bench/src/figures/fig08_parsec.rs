//! Figure 8: PARSEC execution-time speedup (bars) and packet-latency
//! reduction (markers) relative to the mesh baseline, for the small, medium
//! and large topology classes.  Benchmarks are ordered by L2 MPKI exactly
//! like the paper's X axis.

use super::classes;
use netsmith::pipeline::{EvaluatedNetwork, RoutingScheme};
use netsmith::prelude::{evaluate_topology, expert, parsec_suite, FullSystemConfig};
use netsmith_exp::prelude::*;
use std::sync::{Arc, OnceLock};

pub const HEADER: &str =
    "benchmark,class,topology,speedup_vs_mesh,packet_latency_reduction_vs_mesh";

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("fig08_parsec");
    spec.classes = classes(profile);
    spec.candidates = if profile.quick {
        vec![
            CandidateSpec::expert("folded-torus"),
            CandidateSpec::synth(ObjectiveSpec::LatOp),
        ]
    } else {
        vec![
            CandidateSpec::ExpertBaselines,
            CandidateSpec::synth(ObjectiveSpec::LatOp),
            CandidateSpec::synth(ObjectiveSpec::SCOp),
        ]
    };
    spec.assertions = vec![
        Assertion::MinRows { count: 4 },
        Assertion::ColumnPositive {
            column: "speedup_vs_mesh".into(),
        },
    ];

    let quick = profile.quick;
    let config = if quick {
        FullSystemConfig::quick()
    } else {
        FullSystemConfig::default()
    };
    let prepare_seed = profile.seed;
    // The mesh baseline is shared by every cell; prepared once lazily.
    let mesh: Arc<OnceLock<Arc<EvaluatedNetwork>>> = Arc::new(OnceLock::new());

    Figure::new(spec, HEADER, move |cell: &Cell<'_>| {
        let mesh = mesh.get_or_init(|| {
            Arc::new(
                EvaluatedNetwork::prepare(
                    &expert::mesh(&cell.candidate.layout),
                    RoutingScheme::Ndbt,
                    VC_BUDGET,
                    prepare_seed,
                )
                .expect("mesh is routable"),
            )
        });
        let network = cell.candidate.network();
        let suite = parsec_suite();
        let suite = if quick { &suite[..3] } else { &suite[..] };
        let mut rows = Vec::new();
        let mut product = 1.0f64;
        for workload in suite {
            let base = evaluate_topology(
                workload,
                &mesh.topology,
                &mesh.routing,
                Some(&mesh.vcs),
                &config,
            );
            let result = evaluate_topology(
                workload,
                &network.topology,
                &network.routing,
                Some(&network.vcs),
                &config,
            );
            product *= result.speedup_over(&base);
            rows.push(
                Row::new()
                    .str(workload.name)
                    .str(cell.candidate.class.name())
                    .str(network.topology.name())
                    .float(result.speedup_over(&base), 4)
                    .float(result.latency_reduction_over(&base), 4),
            );
        }
        eprintln!(
            "# {} ({}): geomean speedup {:.3}x",
            network.topology.name(),
            cell.candidate.class.name(),
            product.powf(1.0 / suite.len() as f64)
        );
        rows
    })
}
