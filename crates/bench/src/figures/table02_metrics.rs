//! Table II: topology metrics (#links, diameter, average hops, bisection
//! bandwidth) for the 20-router (4x5) and 30-router (6x5) configurations,
//! covering the expert designs, the LPBT-style baselines, and the NetSmith
//! LatOp/SCOp topologies of every link class.

use super::classes;
use netsmith_exp::prelude::*;
use netsmith_topo::metrics::TopologyMetrics;

pub fn header() -> String {
    format!("routers,{}", TopologyMetrics::csv_header())
}

pub fn figure(profile: &RunProfile) -> Figure {
    let mut spec = ExperimentSpec::new("table02_metrics");
    spec.layouts = if profile.quick {
        vec![LayoutSpec::Noi4x5]
    } else {
        vec![LayoutSpec::Noi4x5, LayoutSpec::Noi6x5]
    };
    spec.classes = classes(profile);
    spec.candidates = vec![
        CandidateSpec::ExpertBaselines,
        CandidateSpec::synth(ObjectiveSpec::LatOp),
        CandidateSpec::synth(ObjectiveSpec::SCOp),
    ];
    spec.assertions = vec![Assertion::MinRows { count: 4 }];
    Figure::new(spec, &header(), |cell: &Cell<'_>| {
        let topo = &*cell.candidate.topology;
        if let Some(discovery) = &cell.candidate.discovery {
            eprintln!(
                "# {} ({} routers): objective-bounds gap {:.1}%",
                topo.name(),
                cell.candidate.layout.num_routers(),
                discovery.gap * 100.0
            );
        }
        vec![Row::new()
            .int(cell.candidate.layout.num_routers() as i64)
            .raw(TopologyMetrics::compute(topo).csv_row())]
    })
}
