//! Property-based tests for the network simulator: packet conservation,
//! monotonicity and unit-conversion invariants.

use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
use netsmith_sim::{LatencyStats, NetworkSim, SimConfig};
use netsmith_topo::{expert, Layout};
use proptest::prelude::*;

fn quick_config(seed: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 200,
        measure_cycles: 800,
        drain_cycles: 600,
        seed,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// At low load every measured packet must be delivered, and accepted
    /// throughput can never exceed offered throughput.
    #[test]
    fn packets_are_conserved_and_throughput_bounded(seed in 0u64..5_000, load in 0.02f64..0.15) {
        let layout = Layout::noi_4x5();
        let topo = expert::kite_medium(&layout);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 7).unwrap();
        let sim = NetworkSim::builder(&topo, &table).vcs(&alloc).config(quick_config(seed)).build();
        let report = sim.run(load);
        prop_assert_eq!(report.packets_ejected + report.packets_unfinished, report.packets_injected);
        prop_assert_eq!(report.packets_unfinished, 0);
        prop_assert!(report.accepted_flits_per_node_cycle <= report.offered_flits_per_node_cycle + 0.02);
        prop_assert!(report.avg_latency_cycles >= 1.0);
        prop_assert!(report.p99_latency_cycles >= report.avg_latency_cycles * 0.5);
    }

    /// Latency in nanoseconds must always equal latency in cycles divided
    /// by the clock, and a faster clock never makes the same network slower
    /// in wall-clock terms.
    #[test]
    fn clock_conversion_is_consistent(seed in 0u64..5_000) {
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 7).unwrap();
        let slow = SimConfig { clock_ghz: 2.7, ..quick_config(seed) };
        let fast = SimConfig { clock_ghz: 3.6, ..quick_config(seed) };
        let slow_report = NetworkSim::builder(&topo, &table).vcs(&alloc).config(slow.clone()).build().run(0.1);
        let fast_report = NetworkSim::builder(&topo, &table).vcs(&alloc).config(fast.clone()).build().run(0.1);
        prop_assert!((slow_report.avg_latency_ns - slow.cycles_to_ns(slow_report.avg_latency_cycles)).abs() < 1e-9);
        // Same seed, same cycle-level behaviour: cycle latencies match, so
        // the faster clock strictly reduces wall-clock latency.
        prop_assert!((slow_report.avg_latency_cycles - fast_report.avg_latency_cycles).abs() < 1e-9);
        prop_assert!(fast_report.avg_latency_ns < slow_report.avg_latency_ns);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging per-chunk histograms must be indistinguishable from
    /// recording the concatenated sample stream into one `LatencyStats`:
    /// identical counts, maxima and (histogram-derived) percentiles, and
    /// a mean equal up to float summation order.  This is the property
    /// the serving horizon relies on to report *exact* horizon-level
    /// p95/p99 across epochs instead of a mean of per-epoch percentiles.
    #[test]
    fn merged_chunk_stats_equal_one_shot_stats(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0.5f64..60_000.0, 0..40),
            1..6,
        ),
        p in 0.01f64..0.999,
    ) {
        let mut one_shot = LatencyStats::new();
        for sample in chunks.iter().flatten() {
            one_shot.record(*sample);
        }
        let mut merged = LatencyStats::new();
        for chunk in &chunks {
            let mut part = LatencyStats::new();
            for &sample in chunk {
                part.record(sample);
            }
            merged.merge(&part);
        }
        prop_assert_eq!(merged.count(), one_shot.count());
        prop_assert!((merged.max() - one_shot.max()).abs() < 1e-12);
        // The histograms are integer bin counts, so every percentile is
        // bit-exact regardless of how the stream was chunked.
        for q in [0.5, 0.9, 0.95, 0.99, p] {
            prop_assert_eq!(merged.percentile(q), one_shot.percentile(q));
        }
        let scale = one_shot.mean().abs().max(1.0);
        prop_assert!((merged.mean() - one_shot.mean()).abs() / scale < 1e-9);
    }

    /// `SimReport::latency` is the histogram its own percentile fields
    /// were computed from.
    #[test]
    fn report_percentiles_come_from_the_carried_histogram(seed in 0u64..5_000, load in 0.05f64..0.3) {
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 7).unwrap();
        let sim = NetworkSim::builder(&topo, &table).vcs(&alloc).config(quick_config(seed)).build();
        let report = sim.run(load);
        prop_assert_eq!(report.latency.count(), report.packets_ejected);
        prop_assert_eq!(report.latency.percentile(0.95), report.p95_latency_cycles);
        prop_assert_eq!(report.latency.percentile(0.99), report.p99_latency_cycles);
        prop_assert!((report.latency.mean() - report.avg_latency_cycles).abs() < 1e-12);
    }
}

/// Regression pin: the tail percentiles of a fixed seed/load/topology
/// combination.  Any change to injection order, arbitration, or the
/// histogram's binning shows up as a changed p95/p99 here.
#[test]
fn tail_percentiles_are_pinned_on_a_fixed_seed() {
    let layout = Layout::noi_4x5();
    let topo = expert::folded_torus(&layout);
    let paths = all_shortest_paths(&topo);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 7).unwrap();
    let sim = NetworkSim::builder(&topo, &table)
        .vcs(&alloc)
        .config(quick_config(0xF1665EED))
        .build();
    let report = sim.run(0.2);
    assert_eq!(report.p95_latency_cycles, 48.0, "p95 drifted");
    assert_eq!(report.p99_latency_cycles, 52.0, "p99 drifted");
}
