//! Property-based tests for the network simulator: packet conservation,
//! monotonicity and unit-conversion invariants.

use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
use netsmith_sim::{NetworkSim, SimConfig};
use netsmith_topo::{expert, Layout};
use proptest::prelude::*;

fn quick_config(seed: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 200,
        measure_cycles: 800,
        drain_cycles: 600,
        seed,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// At low load every measured packet must be delivered, and accepted
    /// throughput can never exceed offered throughput.
    #[test]
    fn packets_are_conserved_and_throughput_bounded(seed in 0u64..5_000, load in 0.02f64..0.15) {
        let layout = Layout::noi_4x5();
        let topo = expert::kite_medium(&layout);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 7).unwrap();
        let sim = NetworkSim::builder(&topo, &table).vcs(&alloc).config(quick_config(seed)).build();
        let report = sim.run(load);
        prop_assert_eq!(report.packets_ejected + report.packets_unfinished, report.packets_injected);
        prop_assert_eq!(report.packets_unfinished, 0);
        prop_assert!(report.accepted_flits_per_node_cycle <= report.offered_flits_per_node_cycle + 0.02);
        prop_assert!(report.avg_latency_cycles >= 1.0);
        prop_assert!(report.p99_latency_cycles >= report.avg_latency_cycles * 0.5);
    }

    /// Latency in nanoseconds must always equal latency in cycles divided
    /// by the clock, and a faster clock never makes the same network slower
    /// in wall-clock terms.
    #[test]
    fn clock_conversion_is_consistent(seed in 0u64..5_000) {
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 7).unwrap();
        let slow = SimConfig { clock_ghz: 2.7, ..quick_config(seed) };
        let fast = SimConfig { clock_ghz: 3.6, ..quick_config(seed) };
        let slow_report = NetworkSim::builder(&topo, &table).vcs(&alloc).config(slow.clone()).build().run(0.1);
        let fast_report = NetworkSim::builder(&topo, &table).vcs(&alloc).config(fast.clone()).build().run(0.1);
        prop_assert!((slow_report.avg_latency_ns - slow.cycles_to_ns(slow_report.avg_latency_cycles)).abs() < 1e-9);
        // Same seed, same cycle-level behaviour: cycle latencies match, so
        // the faster clock strictly reduces wall-clock latency.
        prop_assert!((slow_report.avg_latency_cycles - fast_report.avg_latency_cycles).abs() < 1e-9);
        prop_assert!(fast_report.avg_latency_ns < slow_report.avg_latency_ns);
    }
}
