//! Equivalence proptests: the compiled flat-state engine
//! (`NetworkSim::run`) must produce bit-identical `SimReport`s —
//! including the full `ActivityProfile` — to the pre-rework scan-based
//! loop (`NetworkSim::run_reference`) across random topologies, traffic
//! patterns, loads and failed-router masks.  `SimReport`'s derived
//! `PartialEq` compares every counter and every float exactly, so any
//! divergence in event order, tie-breaking or arithmetic shows up here.

use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
use netsmith_sim::{NetworkSim, SimConfig};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{expert, Layout, Topology};
use proptest::prelude::*;

fn equivalence_config(seed: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 150,
        measure_cycles: 700,
        drain_cycles: 400,
        seed,
        ..SimConfig::default()
    }
}

/// One of the expert topologies, optionally densified with extra links so
/// the sweep isn't limited to the hand-designed link sets.
fn topology(choice: u8, extra_links: &[(usize, usize)]) -> Topology {
    let layout = Layout::noi_4x5();
    let mut topo = match choice % 5 {
        0 => expert::mesh(&layout),
        1 => expert::folded_torus(&layout),
        2 => expert::kite_medium(&layout),
        3 => expert::lpbt_power(&layout),
        _ => expert::butter_donut(&layout),
    };
    for &(i, j) in extra_links {
        if i != j {
            topo.add_link(i % 20, j % 20);
        }
    }
    topo
}

fn pattern(choice: u8) -> TrafficPattern {
    match choice % 5 {
        0 => TrafficPattern::UniformRandom,
        1 => TrafficPattern::Shuffle,
        2 => TrafficPattern::Transpose,
        3 => TrafficPattern::BitComplement,
        _ => TrafficPattern::Tornado,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// Healthy networks: random topology × pattern × load.
    #[test]
    fn compiled_run_is_bit_identical_to_reference(
        topo_choice in 0u8..5,
        extra in proptest::collection::vec((0usize..20, 0usize..20), 0..4),
        pattern_choice in 0u8..5,
        seed in 0u64..100_000,
        load in 0.02f64..1.0,
    ) {
        let topo = topology(topo_choice, &extra);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 11).unwrap();
        let sim = NetworkSim::builder(&topo, &table)
            .vcs(&alloc)
            .pattern(pattern(pattern_choice))
            .config(equivalence_config(seed))
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }

    /// Degraded networks: up to two failed routers mask traffic at the
    /// sources while their links keep forwarding.
    #[test]
    fn compiled_run_matches_reference_with_failed_routers(
        topo_choice in 0u8..5,
        seed in 0u64..100_000,
        load in 0.05f64..0.6,
        failures in proptest::collection::vec(0usize..20, 0..3),
    ) {
        let topo = topology(topo_choice, &[]);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 11).unwrap();
        let sim = NetworkSim::builder(&topo, &table)
            .vcs(&alloc)
            .config(equivalence_config(seed))
            .failed_routers(&failures)
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }

    /// Without a VC allocation every packet uses VC 0; the compiled
    /// vc_of_flow table must reproduce that too.
    #[test]
    fn compiled_run_matches_reference_without_vc_allocation(
        seed in 0u64..100_000,
        load in 0.02f64..0.4,
    ) {
        let topo = expert::folded_torus(&Layout::noi_4x5());
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let sim = NetworkSim::builder(&topo, &table)
            .config(equivalence_config(seed))
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }
}
