//! Equivalence proptests: the compiled flat-state engine
//! (`NetworkSim::run`) must produce bit-identical `SimReport`s —
//! including the full `ActivityProfile` — to the pre-rework scan-based
//! loop (`NetworkSim::run_reference`) across random topologies, traffic
//! patterns, loads and failed-router masks.  `SimReport`'s derived
//! `PartialEq` compares every counter and every float exactly, so any
//! divergence in event order, tie-breaking or arithmetic shows up here.

use netsmith_pool::WorkerPool;
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
use netsmith_sim::{InjectionMode, NetworkSim, ParallelMode, SimConfig, Trace};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{expert, Layout, Topology};
use netsmith_trace::TraceModel;
use proptest::prelude::*;
use std::sync::Arc;

fn equivalence_config(seed: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 150,
        measure_cycles: 700,
        drain_cycles: 400,
        seed,
        ..SimConfig::default()
    }
}

/// One of the expert topologies, optionally densified with extra links so
/// the sweep isn't limited to the hand-designed link sets.
fn topology(choice: u8, extra_links: &[(usize, usize)]) -> Topology {
    let layout = Layout::noi_4x5();
    let mut topo = match choice % 5 {
        0 => expert::mesh(&layout),
        1 => expert::folded_torus(&layout),
        2 => expert::kite_medium(&layout),
        3 => expert::lpbt_power(&layout),
        _ => expert::butter_donut(&layout),
    };
    for &(i, j) in extra_links {
        if i != j {
            topo.add_link(i % 20, j % 20);
        }
    }
    topo
}

fn pattern(choice: u8) -> TrafficPattern {
    match choice % 5 {
        0 => TrafficPattern::UniformRandom,
        1 => TrafficPattern::Shuffle,
        2 => TrafficPattern::Transpose,
        3 => TrafficPattern::BitComplement,
        _ => TrafficPattern::Tornado,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// Healthy networks: random topology × pattern × load.
    #[test]
    fn compiled_run_is_bit_identical_to_reference(
        topo_choice in 0u8..5,
        extra in proptest::collection::vec((0usize..20, 0usize..20), 0..4),
        pattern_choice in 0u8..5,
        seed in 0u64..100_000,
        load in 0.02f64..1.0,
    ) {
        let topo = topology(topo_choice, &extra);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 11).unwrap();
        let sim = NetworkSim::builder(&topo, &table)
            .vcs(&alloc)
            .pattern(pattern(pattern_choice))
            .config(equivalence_config(seed))
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }

    /// Degraded networks: up to two failed routers mask traffic at the
    /// sources while their links keep forwarding.
    #[test]
    fn compiled_run_matches_reference_with_failed_routers(
        topo_choice in 0u8..5,
        seed in 0u64..100_000,
        load in 0.05f64..0.6,
        failures in proptest::collection::vec(0usize..20, 0..3),
    ) {
        let topo = topology(topo_choice, &[]);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 11).unwrap();
        let sim = NetworkSim::builder(&topo, &table)
            .vcs(&alloc)
            .config(equivalence_config(seed))
            .failed_routers(&failures)
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }

    /// Without a VC allocation every packet uses VC 0; the compiled
    /// vc_of_flow table must reproduce that too.
    #[test]
    fn compiled_run_matches_reference_without_vc_allocation(
        seed in 0u64..100_000,
        load in 0.02f64..0.4,
    ) {
        let topo = expert::folded_torus(&Layout::noi_4x5());
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let sim = NetworkSim::builder(&topo, &table)
            .config(equivalence_config(seed))
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }

    /// Trace replay: both engines drain the same deterministic cursor (no
    /// RNG at all), across generated traces × topologies × replay rates ×
    /// failure masks.
    #[test]
    fn compiled_run_matches_reference_under_trace_injection(
        topo_choice in 0u8..5,
        model_choice in 0usize..2,
        trace_seed in 0u64..100_000,
        seed in 0u64..100_000,
        load in 0.02f64..0.8,
        failures in proptest::collection::vec(0usize..20, 0..3),
    ) {
        let topo = topology(topo_choice, &[]);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 11).unwrap();
        let model = TraceModel::by_name(TraceModel::names()[model_choice]).unwrap();
        let trace = Arc::new(model.generate(20, 512, trace_seed));
        let sim = NetworkSim::builder(&topo, &table)
            .vcs(&alloc)
            .trace(trace)
            .config(equivalence_config(seed))
            .failed_routers(&failures)
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }

    /// Batched injection schedules vs the reference engine: both consume
    /// the same precomputed per-source schedule (the compiled engine by
    /// jumping idle stretches, the reference by polling it every cycle),
    /// so the reports must stay bit-identical across topologies ×
    /// patterns × loads.  `InjectionMode::Schedule` is the default; this
    /// test pins it explicitly so a default flip can't silently narrow
    /// the coverage.
    #[test]
    fn schedule_mode_engines_consume_one_schedule_bit_identically(
        topo_choice in 0u8..5,
        extra in proptest::collection::vec((0usize..20, 0usize..20), 0..4),
        pattern_choice in 0u8..5,
        seed in 0u64..100_000,
        load in 0.02f64..1.0,
    ) {
        let topo = topology(topo_choice, &extra);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 11).unwrap();
        let sim = NetworkSim::builder(&topo, &table)
            .vcs(&alloc)
            .pattern(pattern(pattern_choice))
            .config(SimConfig {
                injection: InjectionMode::Schedule,
                ..equivalence_config(seed)
            })
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }

    /// The compatibility draw order (one shared stream, one coin per
    /// alive source per cycle) must also agree between the engines.
    #[test]
    fn legacy_coin_mode_engines_stay_bit_identical(
        topo_choice in 0u8..5,
        pattern_choice in 0u8..5,
        seed in 0u64..100_000,
        load in 0.02f64..1.0,
    ) {
        let topo = topology(topo_choice, &[]);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 11).unwrap();
        let sim = NetworkSim::builder(&topo, &table)
            .vcs(&alloc)
            .pattern(pattern(pattern_choice))
            .config(SimConfig {
                injection: InjectionMode::LegacyCoins,
                ..equivalence_config(seed)
            })
            .build();
        prop_assert_eq!(sim.run(load), sim.run_reference(load));
    }

    /// Deterministic intra-simulation parallelism: forcing the parallel
    /// arbitration path onto pools of 1, 2 and 8 workers must reproduce
    /// the sequential run bit-for-bit — the full `SimReport`, including
    /// the `ActivityProfile` and the epoch-probe time-series (enabled
    /// here so per-epoch counters are compared too, not just the window
    /// totals).
    #[test]
    fn forced_parallel_runs_are_bit_identical_across_worker_counts(
        topo_choice in 0u8..5,
        pattern_choice in 0u8..5,
        seed in 0u64..100_000,
        load in 0.02f64..1.0,
    ) {
        let topo = topology(topo_choice, &[]);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 11).unwrap();
        let base = SimConfig {
            epoch_cycles: 200,
            ..equivalence_config(seed)
        };
        let sequential = NetworkSim::builder(&topo, &table)
            .vcs(&alloc)
            .pattern(pattern(pattern_choice))
            .config(SimConfig { parallel: ParallelMode::Off, ..base.clone() })
            .build();
        let expected = sequential.run(load);
        prop_assert!(expected.epochs.is_some());
        for workers in [1usize, 2, 8] {
            let pool = WorkerPool::new(workers);
            let parallel = NetworkSim::builder(&topo, &table)
                .vcs(&alloc)
                .pattern(pattern(pattern_choice))
                .pool(&pool)
                .config(SimConfig { parallel: ParallelMode::Force, ..base.clone() })
                .build();
            prop_assert_eq!(&parallel.run(load), &expected, "workers {}", workers);
        }
    }
}

/// The measurement window here is ~5x the trace horizon at the native
/// rate, so the cursor must wrap through multiple replay waves — and the
/// wrapped schedule still has to agree between the engines and deliver
/// traffic in every wave.
#[test]
fn trace_replay_wraps_past_the_horizon() {
    let topo = expert::folded_torus(&Layout::noi_4x5());
    let paths = all_shortest_paths(&topo);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 11).unwrap();
    let trace = TraceModel::by_name("onoff-hotspot")
        .unwrap()
        .generate(20, 160, 3);
    let native = trace.offered_flits_per_node_cycle();
    let trace = Arc::new(trace);
    let sim = NetworkSim::builder(&topo, &table)
        .vcs(&alloc)
        .trace(Arc::clone(&trace))
        .config(equivalence_config(17))
        .build();
    let report = sim.run(native);
    assert_eq!(report, sim.run_reference(native));
    // 150 warmup + 700 measure cycles over a 160-cycle horizon: if the
    // cursor stopped at the first wave, the window would see almost no
    // traffic.  With wrap-around the injected rate tracks the native rate.
    assert!(
        report.injected_flits_per_node_cycle > 0.7 * native,
        "injected {} vs native {native}",
        report.injected_flits_per_node_cycle
    );
    assert!(report.packets_ejected > 0);
}

/// A hand-built single-message trace: replay must deliver exactly that
/// message's flits, with the issue cycle scaled by the requested load.
#[test]
fn single_message_trace_is_replayed_exactly() {
    let topo = expert::mesh(&Layout::noi_4x5());
    let paths = all_shortest_paths(&topo);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 11).unwrap();
    let trace = Arc::new(Trace::new(
        20,
        1,
        vec![netsmith_trace::TraceMessage {
            src: 0,
            dst: 19,
            flits: 4,
            issue: 0,
        }],
    ));
    // Offered 0.01 flits/node/cycle => native (4/20) / 0.01 = 20-cycle
    // period: one 4-flit packet every 20 cycles, deterministically.
    let config = SimConfig {
        warmup_cycles: 0,
        measure_cycles: 200,
        drain_cycles: 400,
        seed: 1,
        ..SimConfig::default()
    };
    let sim = NetworkSim::builder(&topo, &table)
        .vcs(&alloc)
        .trace(trace)
        .config(config)
        .build();
    let report = sim.run(0.01);
    assert_eq!(report, sim.run_reference(0.01));
    assert_eq!(report.packets_injected, 10, "200 cycles / 20-cycle period");
    assert_eq!(report.packets_ejected, 10);
    assert!((report.injected_flits_per_node_cycle - 0.01).abs() < 1e-9);
    assert_eq!(report.packets_unfinished, 0);
}
