//! The compiled flat-state simulation engine.
//!
//! [`NetworkSim::run`](crate::NetworkSim::run) lowers the routing table and
//! VC allocation into dense arrays once per `(topology, table, vcs)` and
//! then drives a hot loop built around three levers:
//!
//! * **Batched injection sampling** — under
//!   [`InjectionMode::Schedule`](crate::InjectionMode) (the default),
//!   Bernoulli traffic comes from per-source next-injection schedules
//!   ([`InjectionSchedule`]): geometric inter-arrival gaps are
//!   skip-sampled once per *arrival* instead of one coin per source per
//!   cycle, so an idle cycle draws zero RNG.  Because the injection
//!   stream is then a pure function of `(seed, load)` — independent of
//!   which cycles the engine visits — a commit-free cycle can jump
//!   straight to the next ready/free/due threshold even inside the
//!   measurement window, which is where sub-saturation sweep points spend
//!   most of their cycles.  The reference engine consumes the identical
//!   schedule, so the two stay bit-for-bit equal; the pre-rework
//!   per-cycle coin order survives as `InjectionMode::LegacyCoins`.
//! * **Vectorized candidate scan** — each output link keeps its
//!   candidates as two parallel slabs: a packed `(created << 20) | slot`
//!   tie-break key and a `ready_at` cycle.  Arbitration is a branchless
//!   dual min-reduction over the zipped slices (eligible → min key,
//!   in-flight → min ready), which LLVM turns into straight-line
//!   compare/select code; the packed key makes "oldest, lowest slot" a
//!   single integer `min`, reproducing the reference scan's
//!   first-strictly-older tie-break exactly.
//! * **Deterministic intra-simulation parallelism** — for large networks
//!   ([`ParallelMode`]), the per-cycle
//!   arbitration pass is split in two: a parallel phase A precomputes a
//!   `Decision` per active link on the shared [`WorkerPool`] (helpers only *read*
//!   simulation state), and the sequential phase B replays the links in
//!   ascending id order, consuming a cached decision only when the
//!   per-router `touched` stamps prove no earlier commit invalidated it.
//!   Results are therefore bit-identical for every worker count,
//!   including zero.
//!
//! The engine replays the exact event sequence of the scan-based loop
//! ([`NetworkSim::run_reference`](crate::NetworkSim::run_reference)): the
//! same injection stream, the same winner for every output link, the same
//! mid-cycle visibility of earlier links' commits.  Reports are
//! bit-identical; the `compiled_equivalence` proptests assert that across
//! random topologies, patterns, loads, failure masks, injection modes and
//! worker counts.
//!
//! [`InjectionSchedule`]: crate::inject::InjectionSchedule
//! [`ParallelMode`]: crate::config::ParallelMode
//! [`WorkerPool`]: netsmith_pool::WorkerPool

use crate::activity::{ActivityProfile, LinkActivity, RouterActivity};
use crate::config::{InjectionMode, PacketClass, ParallelMode, SimConfig};
use crate::inject::InjectionSchedule;
use crate::network::{point_seed, EpochSample, EpochSeries, NetworkSim, SimReport};
use crate::stats::LatencyStats;
use netsmith_pool::WorkerPool;
use netsmith_route::{Flow, RoutingTable, VcAllocation};
use netsmith_topo::{Layout, RouterId, Topology};
use netsmith_trace::TraceCursor;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Sentinel for "no link": an unrouted flow, an empty source queue, a
/// resident with no physical output (packets on such flows block forever,
/// exactly as under the reference scan).
const NONE: u32 = u32::MAX;

/// Low bits of a packed candidate key holding the slab slot; the high
/// bits hold the creation cycle, so an integer `min` over keys is the
/// lexicographic `(created, slot)` minimum the arbitration needs.
const SLOT_BITS: u32 = 20;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// Links per parallel work chunk: coarse enough to amortize the striding
/// arithmetic, fine enough to balance across helpers.
const PAR_CHUNK: usize = 16;
/// Ceiling on arbitration helpers per simulation; beyond this the
/// per-round hand-off outweighs the extra shards.
const PAR_MAX_HELPERS: usize = 8;
/// Smallest network `ParallelMode::Auto` engages for.
const PAR_MIN_ROUTERS: usize = 48;
/// Under `Auto`, rounds with fewer active links than this stay
/// sequential — the hand-off costs more than the scan.  `Force` always
/// publishes, so the equivalence tests exercise the path on any size.
const PAR_MIN_ACTIVE: usize = 32;

/// The routing table, VC allocation and link structure of one network,
/// lowered to dense index arrays.  Owned (no borrows), built once per
/// `(topology, table, vcs)` and reused across every load point of a sweep.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    n: usize,
    /// Directed links in `Topology::links` iteration order; positions are
    /// the link ids every other array is keyed by.
    links: Vec<(RouterId, RouterId)>,
    /// CSR offsets into `hops`, one slot per flow (`src * n + dst`), plus a
    /// final end sentinel.  An empty range means the flow is unrouted.
    path_offsets: Vec<u32>,
    /// Concatenated per-flow paths as link ids.  A `NONE` entry marks a
    /// table hop with no physical link (an invalid table): packets reaching
    /// it stall forever, matching the reference scan.
    hops: Vec<u32>,
    /// Per-flow virtual channel, already clamped to `num_vcs - 1`.
    vc_of_flow: Vec<u32>,
    num_vcs: usize,
}

impl CompiledNetwork {
    /// Lower `(topology, table, vcs)` into the flat representation.
    pub(crate) fn compile(
        topo: &Topology,
        table: &RoutingTable,
        vcs: Option<&VcAllocation>,
        config: &SimConfig,
    ) -> Self {
        let n = topo.num_routers();
        let links: Vec<(RouterId, RouterId)> = topo.links().collect();
        let mut link_id = vec![NONE; n * n];
        for (idx, &(from, to)) in links.iter().enumerate() {
            link_id[from * n + to] = idx as u32;
        }
        let mut path_offsets = Vec::with_capacity(n * n + 1);
        let mut hops = Vec::new();
        let mut vc_of_flow = vec![0u32; n * n];
        path_offsets.push(0u32);
        for src in 0..n {
            for dst in 0..n {
                if let Some(path) = table.path(src, dst) {
                    for pair in path.windows(2) {
                        hops.push(link_id[pair[0] * n + pair[1]]);
                    }
                }
                path_offsets.push(hops.len() as u32);
                vc_of_flow[src * n + dst] = vcs
                    .and_then(|a| a.assignment.get(&Flow::new(src, dst)).copied())
                    .unwrap_or(0)
                    .min(config.num_vcs - 1) as u32;
            }
        }
        CompiledNetwork {
            n,
            links,
            path_offsets,
            hops,
            vc_of_flow,
            num_vcs: config.num_vcs,
        }
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of routed flows.
    pub fn num_routed_flows(&self) -> usize {
        self.path_offsets.windows(2).filter(|w| w[1] > w[0]).count()
    }

    /// Total compiled hop entries across all flows.
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// First-hop link of a flow (`NONE` when unrouted).
    #[inline]
    fn first_hop(&self, flow: u32) -> u32 {
        let off = self.path_offsets[flow as usize] as usize;
        let end = self.path_offsets[flow as usize + 1] as usize;
        if off == end {
            NONE
        } else {
            self.hops[off]
        }
    }
}

/// A packet resident in a router's input buffer, flat form.  Slab-stored
/// per router; `cand_pos` back-points into the candidate slabs of
/// `out_link` so both sides update in O(1) under `swap_remove`.
#[derive(Debug, Clone)]
struct FlatResident {
    created: u64,
    ready_at: u64,
    flits: u32,
    vc: u32,
    flow: u32,
    /// Index (within the flow's hop sequence) of the next link to take.
    next_idx: u32,
    /// Link whose downstream VC buffer the packet occupies.
    in_link: u32,
    /// The next link to take (`hops[off + next_idx]`), or `NONE` when the
    /// table has no physical link there (the packet stalls forever).
    out_link: u32,
    /// Position of this resident's entry in the candidate slabs of
    /// `out_link`.
    cand_pos: u32,
}

/// A freshly injected packet waiting in a source queue.
#[derive(Debug, Clone)]
struct FlatPacket {
    created: u64,
    flits: u32,
    vc: u32,
    flow: u32,
}

/// Winner read-out captured by [`St::arbitrate_pre`]: the fields of the
/// winning packet a commit consumes, read while arbitration already has
/// them hot.  `off` is the flow's offset into the hop table and
/// `ejecting` whether this hop is the last.  Default-initialized (and
/// meaningless) for non-commit decisions.
#[derive(Debug, Clone, Copy, Default)]
struct Pre {
    created: u64,
    flits: u32,
    vc: u32,
    flow: u32,
    next_idx: u32,
    in_link: u32,
    off: u32,
    ejecting: bool,
}

/// Hot per-link state: the cycle the link is serializing until, plus the
/// measurement-window activity counters, packed so a commit touches one
/// location per link.  `free_at` is monotone — a link only ever gets
/// busier — which is what makes busy-aware wake-ups (see [`St::wake`])
/// exact.
#[derive(Debug, Clone, Copy)]
struct LinkState {
    free_at: u64,
    flits: u64,
    busy_cycles: u64,
}

impl LinkState {
    const IDLE: LinkState = LinkState {
        free_at: 0,
        flits: 0,
        busy_cycles: 0,
    };
}

/// Per-router buffered-flit occupancy, integrated lazily: the reference
/// loop samples `buffered` once per measurement cycle (before that cycle's
/// commits), so a value set during cycle `c` counts for sample cycles
/// `c + 1 ..`.  `accrue` settles the closed interval since the previous
/// change; called at every change point and once at the end, it reproduces
/// the per-cycle sum exactly without an O(routers) pass per cycle — and it
/// makes the value independent of *which* cycles the engine visits, which
/// is what lets commit-free stretches be jumped.
#[derive(Debug, Clone, Copy)]
struct RouterBuf {
    buffered: u64,
    /// First sample cycle the current `buffered` value applies to.
    since: u64,
    flit_cycles: u64,
}

impl RouterBuf {
    #[inline]
    fn accrue(&mut self, change_cycle: u64, measure_start: u64, measure_end: u64) {
        let lo = self.since.max(measure_start);
        let hi = (change_cycle + 1).min(measure_end);
        if hi > lo {
            self.flit_cycles += self.buffered * (hi - lo);
        }
        self.since = change_cycle + 1;
    }
}

/// Windowed per-router activity accounting, packed so a commit's updates
/// (forwarded flits, active-cycle edge detection, buffer accrual) land on
/// one cache line per router instead of four parallel arrays.
#[derive(Debug, Clone, Copy)]
struct RouterState {
    /// Flits forwarded during the measurement window.
    flits: u64,
    /// Measurement cycles with at least one commit out of this router.
    active_cycles: u64,
    /// Last cycle counted in `active_cycles` (edge detector).
    last_active: u64,
    buf: RouterBuf,
}

#[inline]
fn set_bit(active: &mut [u64], link: u32) {
    active[(link / 64) as usize] |= 1u64 << (link % 64);
}

#[inline]
fn clear_bit(active: &mut [u64], link: u32) {
    active[(link / 64) as usize] &= !(1u64 << (link % 64));
}

/// What one output link does this cycle, as computed by [`St::arbitrate`].
/// Phase A of a parallel round precomputes these; the sequential commit
/// pass consumes one (cached or recomputed) per active link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    /// Still serializing: park until `free_at`.
    Busy,
    /// Nothing can move; park until the carried cycle (`u64::MAX` = go
    /// dark until an add / head / renumber wake re-arms the link).
    Park(u64),
    /// The source queue's head packet wins.
    CommitSource,
    /// The resident in the carried slab slot wins.
    CommitSlot(u32),
}

/// Knobs: the per-run read-only parameters threaded through the loop.
struct Knobs<'s, 'a> {
    sim: &'s NetworkSim<'a>,
    layout: Layout,
    measure_start: u64,
    measure_end: u64,
    total_cycles: u64,
    inject_thr: u64,
    data_thr: u64,
    data_flits: u32,
    ctrl_flits: u32,
    max_flits: u64,
    link_latency: u64,
    router_latency: u64,
    num_links: usize,
    force_parallel: bool,
}

/// Window counters folded into the final [`SimReport`].
struct Counters {
    stats: LatencyStats,
    packets: u64,
    window_flits: u64,
    outstanding: u64,
    packets_ejected: u64,
    flits_ejected: u64,
}

/// The optional per-epoch time-series accumulator (`len == 0` disables
/// it).  Attribution mirrors the window counters — injections by
/// injection cycle, accepted flits by arrival cycle, latency samples by
/// creation cycle — so every epoch column sums (or averages) back to the
/// corresponding report field.  Boundaries are closed lazily at the loop
/// head; a jump over a boundary is exact because nothing changes during a
/// jumped stretch, so the occupancy snapshot is the boundary's.
struct EpochProbe {
    len: u64,
    measure_start: u64,
    measure_end: u64,
    injected: Vec<u64>,
    accepted: Vec<u64>,
    ejected: Vec<u64>,
    stats: Vec<LatencyStats>,
    buffered: Vec<u64>,
    idx: usize,
    next_end: u64,
}

impl EpochProbe {
    fn new(cfg: &SimConfig, measure_start: u64, measure_end: u64) -> Self {
        let len = cfg.epoch_cycles;
        let num = if len > 0 {
            cfg.measure_cycles.div_ceil(len) as usize
        } else {
            0
        };
        EpochProbe {
            len,
            measure_start,
            measure_end,
            injected: vec![0; num],
            accepted: vec![0; num],
            ejected: vec![0; num],
            stats: vec![LatencyStats::new(); num],
            buffered: vec![0; num],
            idx: 0,
            next_end: if num > 0 {
                (measure_start + len).min(measure_end)
            } else {
                u64::MAX
            },
        }
    }

    /// Close every epoch that ends at or before `cycle`, snapshotting the
    /// instantaneous buffered-flit occupancy as of the boundary (all
    /// commits of the epoch's last visited cycle have happened; nothing of
    /// the current cycle has, and jumped cycles change nothing).
    #[inline]
    fn close_finished(&mut self, cycle: u64, routers: &[RouterState]) {
        while cycle >= self.next_end && self.idx < self.injected.len() {
            self.buffered[self.idx] = routers.iter().map(|r| r.buf.buffered).sum();
            self.idx += 1;
            self.next_end = if self.idx < self.injected.len() {
                (self.measure_start + (self.idx as u64 + 1) * self.len).min(self.measure_end)
            } else {
                u64::MAX
            };
        }
    }

    // `len > 0` below means "probe enabled", not a division guard:
    // `checked_div` would hoist the cycle-offset subtraction ahead of it,
    // which may underflow while the probe is disabled.
    #[inline]
    #[allow(clippy::manual_checked_ops)]
    fn note_injected(&mut self, cycle: u64, flits: u64) {
        if self.len > 0 {
            self.injected[((cycle - self.measure_start) / self.len) as usize] += flits;
        }
    }

    #[inline]
    #[allow(clippy::manual_checked_ops)]
    fn note_accepted(&mut self, arrival: u64, flits: u64) {
        if self.len > 0 {
            self.accepted[((arrival - self.measure_start) / self.len) as usize] += flits;
        }
    }

    #[inline]
    #[allow(clippy::manual_checked_ops)]
    fn note_ejected(&mut self, created: u64, latency: f64) {
        if self.len > 0 {
            let e = ((created - self.measure_start) / self.len) as usize;
            self.stats[e].record(latency);
            self.ejected[e] += 1;
        }
    }

    /// Close any epochs still open and assemble the series.
    fn finish(mut self, routers: &[RouterState]) -> Option<EpochSeries> {
        let num = self.injected.len();
        while self.idx < num {
            self.buffered[self.idx] = routers.iter().map(|r| r.buf.buffered).sum();
            self.idx += 1;
        }
        (self.len > 0).then(|| EpochSeries {
            epoch_cycles: self.len,
            samples: (0..num)
                .map(|e| {
                    let start_cycle = self.measure_start + e as u64 * self.len;
                    EpochSample {
                        start_cycle,
                        end_cycle: (start_cycle + self.len).min(self.measure_end),
                        injected_flits: self.injected[e],
                        accepted_flits: self.accepted[e],
                        packets_ejected: self.ejected[e],
                        mean_latency_cycles: self.stats[e].mean(),
                        p95_latency_cycles: self.stats[e].percentile(0.95),
                        buffered_flits: self.buffered[e],
                    }
                })
                .collect(),
        })
    }
}

/// The mutable simulation state, gathered into one struct so the main
/// thread can hand read-only views to arbitration helpers between its own
/// exclusive regions.
struct St<'n> {
    net: &'n CompiledNetwork,
    num_vcs: usize,
    vc_buffer_flits: u64,
    lstate: Vec<LinkState>,
    routers: Vec<RouterState>,
    /// Flat per-(link, VC) buffer occupancy in flits.
    vc_occ: Vec<u32>,
    /// Per-router resident slabs; slot order matches the reference loop's
    /// `swap_remove` order exactly (tie-breaking depends on it).
    residents: Vec<Vec<FlatResident>>,
    /// Per-output-link candidate slabs, structure-of-arrays: the packed
    /// `(created << SLOT_BITS) | slot` tie-break key and the arrival
    /// cycle, in matching positions.  Two flat arrays keep the min-scan
    /// branchless and autovectorizable.
    cand_keys: Vec<Vec<u64>>,
    cand_ready: Vec<Vec<u64>>,
    /// One-bit-per-link active set over the candidate slabs.
    active: Vec<u64>,
    /// Parking calendar: a link with provably nothing to do until a known
    /// cycle leaves the active set and re-arms through this ring.  Each
    /// bucket is a bitmap with the same word layout as `active`, so a
    /// park is one `OR`, duplicates coalesce for free, and draining a
    /// bucket is a word-wise `OR` into the active set.
    ring: Vec<u64>,
    ring_mask: u64,
    /// Source (injection) queues plus the out-link of each queue's head.
    source_queues: Vec<VecDeque<FlatPacket>>,
    head_out: Vec<u32>,
    /// Last cycle each router's arbitration-visible state was mutated by
    /// a commit; a cached phase-A decision for link `(from, to)` is valid
    /// iff neither endpoint was touched this cycle.
    touched: Vec<u64>,
    /// Scratch: ascending snapshot of the active set for a parallel round.
    snap: Vec<u32>,
}

impl St<'_> {
    /// Make `link` get examined again as soon as examining it could
    /// matter: immediately when the link is idle, otherwise at `free_at`
    /// through the ring — a busy link cannot commit before it frees, and
    /// `free_at` only grows through the link's own commits (which re-arm
    /// it themselves), so deferring the visit is exact and skips every
    /// pointless busy-check in between.  Duplicate wake-ups are harmless:
    /// a visit that finds nothing to do parks the link again.
    /// Park `link` in the calendar bucket for cycle `t` (one bit-OR).
    #[inline]
    fn ring_push(&mut self, t: u64, link: u32) {
        let words = self.active.len();
        let idx = (t & self.ring_mask) as usize;
        self.ring[idx * words + (link / 64) as usize] |= 1u64 << (link % 64);
    }

    #[inline]
    fn wake(&mut self, cycle: u64, link: u32) {
        let free_at = self.lstate[link as usize].free_at;
        if free_at > cycle {
            self.ring_push(free_at.min(cycle + self.ring_mask), link);
        } else {
            set_bit(&mut self.active, link);
        }
    }

    /// Wake parked links whose scheduled cycle has arrived.
    #[inline]
    fn drain_ring(&mut self, cycle: u64) {
        let words = self.active.len();
        let idx = (cycle & self.ring_mask) as usize * words;
        for w in 0..words {
            self.active[w] |= self.ring[idx + w];
            self.ring[idx + w] = 0;
        }
    }

    /// Insert a resident into router `to`'s slab and register it with its
    /// output link's candidate slabs.  The output link is woken through
    /// the ring at `max(ready_at, free_at)` rather than immediately: the
    /// new candidate cannot move before it arrives, the link cannot
    /// commit before it frees, and every earlier visit would find
    /// nothing — waking at the later of the two is exact.
    #[inline]
    fn add_resident(&mut self, cycle: u64, to: usize, mut r: FlatResident) {
        let slot = self.residents[to].len() as u32;
        debug_assert!(
            (slot as u64) < SLOT_MASK,
            "slab slot overflows the packed key"
        );
        debug_assert!(
            r.created < (u64::MAX >> SLOT_BITS),
            "cycle overflows the packed key"
        );
        if r.out_link != NONE {
            let o = r.out_link as usize;
            r.cand_pos = self.cand_keys[o].len() as u32;
            self.cand_keys[o].push(((r.created) << SLOT_BITS) | slot as u64);
            self.cand_ready[o].push(r.ready_at);
            let t = r
                .ready_at
                .max(self.lstate[o].free_at)
                .min(cycle + self.ring_mask);
            self.ring_push(t, r.out_link);
        } else {
            r.cand_pos = NONE;
        }
        self.residents[to].push(r);
    }

    /// Remove slot `ri` from router `from`'s slab, keeping every surviving
    /// resident's slot/candidate cross-references consistent under the
    /// `swap_remove`s.  The caller parks the committed link; a link whose
    /// candidate got renumbered is re-armed here (its tie-break key
    /// changed, which can change the winner a parked link was blocked on).
    #[inline]
    fn remove_resident(&mut self, cycle: u64, from: usize, ri: u32) {
        let ri_us = ri as usize;
        let (out, pos) = {
            let r = &self.residents[from][ri_us];
            (r.out_link, r.cand_pos)
        };
        if out != NONE {
            let o = out as usize;
            let pos = pos as usize;
            self.cand_keys[o].swap_remove(pos);
            self.cand_ready[o].swap_remove(pos);
            if pos < self.cand_keys[o].len() {
                // The entry moved into `pos` belongs to another resident
                // of the same router: repair its back-pointer.
                let moved_slot = (self.cand_keys[o][pos] & SLOT_MASK) as usize;
                self.residents[from][moved_slot].cand_pos = pos as u32;
            }
        }
        self.residents[from].swap_remove(ri_us);
        if ri_us < self.residents[from].len() {
            // The slab's last resident moved into `ri`: rewrite the slot
            // bits of its packed key and re-arm that link — renumbering
            // changes the `(created, slot)` tie-break, which can change
            // the winner a parked link was blocked on.
            let (mpos, mout) = {
                let moved = &self.residents[from][ri_us];
                (moved.cand_pos, moved.out_link)
            };
            if mpos != NONE {
                let key = &mut self.cand_keys[mout as usize][mpos as usize];
                *key = (*key & !SLOT_MASK) | ri as u64;
                self.wake(cycle, mout);
            }
        }
    }

    /// Append a freshly injected packet to its source queue, waking the
    /// first-hop link when the packet becomes the new head.
    #[inline]
    fn push_source_packet(&mut self, cycle: u64, src: usize, flits: u32, flow: u32) {
        let queue = &mut self.source_queues[src];
        queue.push_back(FlatPacket {
            created: cycle,
            flits,
            vc: self.net.vc_of_flow[flow as usize],
            flow,
        });
        if queue.len() == 1 {
            let first = self.net.first_hop(flow);
            self.head_out[src] = first;
            if first != NONE {
                self.wake(cycle, first);
            }
        }
    }

    /// The rare legacy-coin injection-hit path, outlined from the
    /// per-source coin loop.  Kept out of line deliberately: inlined, the
    /// queue and wake machinery forces the RNG state and loop bounds into
    /// the stack on every coin draw, and the common *miss* path pays for
    /// it.
    #[cold]
    #[inline(never)]
    fn inject_legacy(
        &mut self,
        k: &Knobs<'_, '_>,
        rng: &mut SmallRng,
        cycle: u64,
        in_window: bool,
        src: usize,
        counters: &mut Counters,
    ) {
        // RNG draw order matches the reference loop exactly: the
        // destination sample happens here, and the class coin only if the
        // destination is routable and alive.
        let Some(dst) = k.sim.pattern.sample_destination(&k.layout, src, rng) else {
            return;
        };
        if !k.sim.alive[dst] {
            return;
        }
        let flits = if (rng.next_u64() >> 11) < k.data_thr {
            k.data_flits
        } else {
            k.ctrl_flits
        };
        let flow = (src * self.net.n + dst) as u32;
        if in_window {
            counters.packets += 1;
            counters.window_flits += flits as u64;
            counters.outstanding += 1;
        }
        self.push_source_packet(cycle, src, flits, flow);
    }

    /// Decide what output link `o` does this cycle.  Pure read — this is
    /// the function parallel helpers run — and exactly the reference
    /// loop's semantics: oldest eligible candidate wins, ties to the
    /// lowest slot, the source-queue head loses ties, and a forward needs
    /// downstream credit for the whole packet.
    #[inline]
    fn arbitrate(&self, o: usize, cycle: u64) -> Decision {
        self.arbitrate_pre(o, cycle).0
    }

    /// [`St::arbitrate`] plus the winner read-out: everything the commit
    /// needs about the winning packet, captured while its cache lines are
    /// hot so the sequential fast path ([`St::commit_pre`]) never re-reads
    /// the queue head, resident slab or path table.  The read-out is
    /// meaningful only for commit decisions.
    #[inline]
    fn arbitrate_pre(&self, o: usize, cycle: u64) -> (Decision, Pre) {
        if self.lstate[o].free_at > cycle {
            return (Decision::Busy, Pre::default());
        }
        // Branchless dual min-reduction over the candidate slabs:
        // eligible entries feed the winner key, in-flight entries feed
        // the next-arrival park target.
        let mut best_key = u64::MAX;
        let mut next_ready = u64::MAX;
        for (&key, &ready) in self.cand_keys[o].iter().zip(self.cand_ready[o].iter()) {
            let elig = ready <= cycle;
            best_key = best_key.min(if elig { key } else { u64::MAX });
            next_ready = next_ready.min(if elig { u64::MAX } else { ready });
        }
        let (from, _) = self.net.links[o];
        // The source-queue head loses ties to residents, as in the
        // reference loop.  With no eligible resident `best_key >>
        // SLOT_BITS` is an unreachable creation cycle, so any head wins.
        let from_source = self.head_out[from] == o as u32
            && self.source_queues[from]
                .front()
                .is_some_and(|h| h.created < (best_key >> SLOT_BITS));
        if !from_source && best_key == u64::MAX {
            return (Decision::Park(next_ready), Pre::default());
        }
        let slot = (best_key & SLOT_MASK) as u32;
        let (created, flits, vc, flow, next_idx, in_link) = if from_source {
            let h = self.source_queues[from].front().unwrap();
            (h.created, h.flits, h.vc, h.flow, 0u32, NONE)
        } else {
            let r = &self.residents[from][slot as usize];
            (r.created, r.flits, r.vc, r.flow, r.next_idx, r.in_link)
        };
        let off = self.net.path_offsets[flow as usize] as usize;
        let path_len = self.net.path_offsets[flow as usize + 1] as usize - off;
        let ejecting = next_idx as usize + 1 == path_len;
        if !ejecting {
            // The packet will occupy the VC buffer at the downstream end
            // of *this* link; without credit for all of it, nothing moves.
            let occ = self.vc_occ[o * self.num_vcs + vc as usize];
            if occ as u64 + flits as u64 > self.vc_buffer_flits {
                return (Decision::Park(next_ready), Pre::default());
            }
        }
        let pre = Pre {
            created,
            flits,
            vc,
            flow,
            next_idx,
            in_link,
            off: off as u32,
            ejecting,
        };
        if from_source {
            (Decision::CommitSource, pre)
        } else {
            (Decision::CommitSlot(slot), pre)
        }
    }

    /// Commit a winning decision on link `o`: dequeue the winner, account
    /// the serialization, and either eject or forward.  Stamps the
    /// endpoint routers' `touched` marks so later links' cached phase-A
    /// decisions are invalidated exactly when this commit could have
    /// changed them.
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &mut self,
        o: usize,
        cycle: u64,
        dec: Decision,
        k: &Knobs<'_, '_>,
        counters: &mut Counters,
        probe: &mut EpochProbe,
        in_window: bool,
    ) {
        // Re-read the winner (the cached-decision parallel path arrives
        // here without a read-out in hand).
        let (from, _) = self.net.links[o];
        let (created, flits, vc, flow, next_idx, in_link) = if dec == Decision::CommitSource {
            let h = self.source_queues[from].front().unwrap();
            (h.created, h.flits, h.vc, h.flow, 0u32, NONE)
        } else {
            let Decision::CommitSlot(slot) = dec else {
                unreachable!("commit called on a non-commit decision");
            };
            let r = &self.residents[from][slot as usize];
            (r.created, r.flits, r.vc, r.flow, r.next_idx, r.in_link)
        };
        let off = self.net.path_offsets[flow as usize] as usize;
        let path_len = self.net.path_offsets[flow as usize + 1] as usize - off;
        let pre = Pre {
            created,
            flits,
            vc,
            flow,
            next_idx,
            in_link,
            off: off as u32,
            ejecting: next_idx as usize + 1 == path_len,
        };
        self.commit_pre(o, cycle, dec, pre, k, counters, probe, in_window);
    }

    /// Commit with the winner read-out already in hand (the sequential
    /// fast path, fused with [`St::arbitrate_pre`]).  Deliberately not
    /// inlined: folding the commit machinery into the scan loop costs
    /// more in code size than the call saves.
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn commit_pre(
        &mut self,
        o: usize,
        cycle: u64,
        dec: Decision,
        pre: Pre,
        k: &Knobs<'_, '_>,
        counters: &mut Counters,
        probe: &mut EpochProbe,
        in_window: bool,
    ) {
        let (from, to) = self.net.links[o];
        let from_source = dec == Decision::CommitSource;
        let Pre {
            created,
            flits,
            vc,
            flow,
            next_idx,
            in_link,
            off,
            ejecting,
        } = pre;
        let off = off as usize;
        self.touched[from] = cycle;
        if from_source {
            self.source_queues[from].pop_front();
            let next_head = match self.source_queues[from].front() {
                Some(p) => self.net.first_hop(p.flow),
                None => NONE,
            };
            self.head_out[from] = next_head;
            if next_head != NONE && next_head != o as u32 {
                self.wake(cycle, next_head);
            }
        } else {
            let Decision::CommitSlot(slot) = dec else {
                unreachable!();
            };
            self.remove_resident(cycle, from, slot);
            let occ = &mut self.vc_occ[in_link as usize * self.num_vcs + vc as usize];
            let occ_old = *occ;
            *occ = occ.saturating_sub(flits);
            // Credit release: the upstream link may be parked on this
            // VC's buffer being full.  A packet of `w <= max_flits` flits
            // was blocked iff `occ_old + w > capacity`, so when even the
            // largest class fit there was nothing to unblock and the wake
            // can be skipped exactly.
            if occ_old as u64 + k.max_flits > self.vc_buffer_flits {
                self.wake(cycle, in_link);
            }
            let rb = &mut self.routers[from].buf;
            rb.accrue(cycle, k.measure_start, k.measure_end);
            rb.buffered = rb.buffered.saturating_sub(flits as u64);
        }
        // The link now serializes this packet: park it, re-arming at
        // `free_at` only when it could have work then (a remaining
        // candidate or a source head) — if it goes dark, every later
        // add/head/renumber wake is busy-aware and re-arms it itself.
        let serialization = flits as u64;
        let free_at = cycle + serialization;
        clear_bit(&mut self.active, o as u32);
        if !self.cand_keys[o].is_empty() || self.head_out[from] == o as u32 {
            self.ring_push(free_at.min(cycle + self.ring_mask), o as u32);
        }
        {
            let s = &mut self.lstate[o];
            s.free_at = free_at;
            if in_window {
                s.flits += serialization;
                s.busy_cycles += serialization.min(k.measure_end - cycle);
            }
        }
        if in_window {
            let rs = &mut self.routers[from];
            rs.flits += serialization;
            if rs.last_active != cycle {
                rs.last_active = cycle;
                rs.active_cycles += 1;
            }
        }
        let arrival = cycle + k.link_latency + serialization + k.router_latency;
        if ejecting {
            // Ejected at the destination.
            let latency = (arrival - created) as f64;
            if created >= k.measure_start && created < k.measure_end {
                counters.stats.record(latency);
                counters.packets_ejected += 1;
                counters.outstanding = counters.outstanding.saturating_sub(1);
                probe.note_ejected(created, latency);
            }
            if arrival >= k.measure_start && arrival < k.measure_end {
                counters.flits_ejected += flits as u64;
                probe.note_accepted(arrival, flits as u64);
            }
        } else {
            self.touched[to] = cycle;
            self.vc_occ[o * self.num_vcs + vc as usize] += flits;
            let rb = &mut self.routers[to].buf;
            rb.accrue(cycle, k.measure_start, k.measure_end);
            rb.buffered += flits as u64;
            let next_idx = next_idx + 1;
            self.add_resident(
                cycle,
                to,
                FlatResident {
                    created,
                    ready_at: arrival,
                    flits,
                    vc,
                    flow,
                    next_idx,
                    in_link: o as u32,
                    out_link: self.net.hops[off + next_idx as usize],
                    cand_pos: NONE,
                },
            );
        }
    }
}

/// Shared-state cell for the parallel arbitration rounds.
///
/// SAFETY contract: the main thread holds `&mut St` only *between* rounds
/// (injection, snapshot, phase B); during a published round both main and
/// helpers hold only `&St`.  The round protocol's release/acquire pair on
/// `ParShared::job` / `ParShared::acks` orders every prior mutation
/// before the helpers' reads and the helpers' decision writes before the
/// main thread's consumption.
struct StCell<'n>(UnsafeCell<St<'n>>);
// SAFETY: see the round protocol above; St contains only Send data.
unsafe impl Sync for StCell<'_> {}

/// One precomputed decision slot per link; participants of a round write
/// disjoint slots (the snapshot is chunk-partitioned by rank).
struct DecSlot(UnsafeCell<Decision>);
// SAFETY: writes are disjoint per round and ordered by the acks fence.
unsafe impl Sync for DecSlot {}

/// Round coordination between the main simulation thread and its
/// arbitration helpers: main publishes a round by bumping `job` (release)
/// after staging `cycle` and the participant set; each counted helper
/// processes its chunk stride and acknowledges the job id (release).  A
/// helper that never started simply stays out of `live` and is excluded
/// from the next round, so pool starvation degrades to sequential
/// execution instead of deadlock.
struct ParShared {
    job: AtomicU64,
    cycle: AtomicU64,
    finished: AtomicBool,
    live: Vec<AtomicBool>,
    participating: Vec<AtomicBool>,
    acks: Vec<AtomicU64>,
}

impl ParShared {
    fn new(helpers: usize) -> Self {
        ParShared {
            job: AtomicU64::new(0),
            cycle: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            live: (0..helpers).map(|_| AtomicBool::new(false)).collect(),
            participating: (0..helpers).map(|_| AtomicBool::new(false)).collect(),
            acks: (0..helpers).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Sets `finished` when the main simulation closure exits (including by
/// panic), so helpers never outlive the run.
struct FinishGuard<'a>(&'a AtomicBool);
impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Poisons the helper's ack register if it unwinds mid-round, so the main
/// thread fails fast instead of spinning forever.  (On a clean exit the
/// poison lands after `finished` is set, when nobody reads acks anymore.)
struct HelperGuard<'a> {
    shared: &'a ParShared,
    h: usize,
}
impl Drop for HelperGuard<'_> {
    fn drop(&mut self) {
        self.shared.acks[self.h].store(u64::MAX, Ordering::Release);
    }
}

/// The arbitration helper body: wait for each published round, arbitrate
/// the chunk stride assigned by participation rank, acknowledge.
fn helper_loop(h: usize, cell: &StCell<'_>, dec: &[DecSlot], shared: &ParShared) {
    shared.live[h].store(true, Ordering::Release);
    let _guard = HelperGuard { shared, h };
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        let job = loop {
            let j = shared.job.load(Ordering::Acquire);
            if j != seen {
                break j;
            }
            if shared.finished.load(Ordering::Acquire) {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        };
        seen = job;
        if !shared.participating[h].load(Ordering::Relaxed) {
            shared.acks[h].store(job, Ordering::Release);
            continue;
        }
        let mut rank = 1usize;
        let mut parts = 1usize;
        for (g, p) in shared.participating.iter().enumerate() {
            if p.load(Ordering::Relaxed) {
                parts += 1;
                if g < h {
                    rank += 1;
                }
            }
        }
        let cycle = shared.cycle.load(Ordering::Relaxed);
        // SAFETY: the round protocol guarantees main holds no `&mut St`
        // while this job id is published and unacknowledged.
        let st = unsafe { &*cell.0.get() };
        let len = st.snap.len();
        let mut chunk = rank;
        loop {
            let lo = chunk * PAR_CHUNK;
            if lo >= len {
                break;
            }
            let hi = (lo + PAR_CHUNK).min(len);
            for &o in &st.snap[lo..hi] {
                let d = st.arbitrate(o as usize, cycle);
                // SAFETY: chunk striding makes slot writes disjoint.
                unsafe { *dec[o as usize].0.get() = d };
            }
            chunk += parts;
        }
        shared.acks[h].store(job, Ordering::Release);
    }
}

/// The cycle loop, shared by the sequential and parallel paths (`par` is
/// `None` when no helpers are attached).
#[allow(clippy::too_many_arguments)]
fn run_cycles(
    cell: &StCell<'_>,
    k: &Knobs<'_, '_>,
    mut rng: SmallRng,
    mut trace_cursor: Option<TraceCursor<'_>>,
    mut sched: Option<InjectionSchedule>,
    counters: &mut Counters,
    probe: &mut EpochProbe,
    par: Option<(&ParShared, &[DecSlot])>,
) {
    let l = k.num_links;
    // With a schedule or a trace, injection draws no per-cycle RNG, so a
    // commit-free cycle can be jumped even inside the measurement window;
    // legacy coins burn one draw per source per cycle and must visit all.
    let rng_free = trace_cursor.is_some() || sched.is_some();
    let mut cycle: u64 = 0;
    while cycle < k.total_cycles {
        let in_window = cycle >= k.measure_start && cycle < k.measure_end;
        let mut round_parts = 0usize;
        let mut round_job = 0u64;
        {
            // SAFETY: exclusive region — no round is in flight.
            let st = unsafe { &mut *cell.0.get() };
            probe.close_finished(cycle, &st.routers);
            st.drain_ring(cycle);
            // Traffic generation.  (Buffer occupancy for the router
            // activity profile is integrated lazily at change points —
            // see `RouterBuf::accrue` — instead of the reference loop's
            // per-cycle sampling pass.)
            if cycle < k.measure_end {
                if let Some(cursor) = trace_cursor.as_mut() {
                    // Trace replay: no coins, no RNG — drain every message
                    // due this cycle, mirroring the reference loop's trace
                    // branch exactly.
                    while let Some(m) = cursor.pop_due(cycle) {
                        let (src, dst) = (m.src as usize, m.dst as usize);
                        if !k.sim.alive[src] || !k.sim.alive[dst] {
                            continue;
                        }
                        let flits = m.flits;
                        let flow = (src * st.net.n + dst) as u32;
                        if in_window {
                            counters.packets += 1;
                            counters.window_flits += flits as u64;
                            counters.outstanding += 1;
                            probe.note_injected(cycle, flits as u64);
                        }
                        st.push_source_packet(cycle, src, flits, flow);
                    }
                } else if let Some(s) = sched.as_mut() {
                    // Batched Bernoulli sampling: only cycles with an
                    // arrival due reach the RNG at all.
                    while let Some(ev) = s.pop_due(cycle, &k.sim.pattern, &k.layout, &k.sim.alive) {
                        let src = ev.src as usize;
                        let flow = (src * st.net.n + ev.dst as usize) as u32;
                        if in_window {
                            counters.packets += 1;
                            counters.window_flits += ev.flits as u64;
                            counters.outstanding += 1;
                            probe.note_injected(cycle, ev.flits as u64);
                        }
                        st.push_source_packet(cycle, src, ev.flits, flow);
                    }
                } else {
                    for (src, &alive) in k.sim.alive.iter().enumerate() {
                        if alive && (rng.next_u64() >> 11) < k.inject_thr {
                            let flits_before = counters.window_flits;
                            st.inject_legacy(k, &mut rng, cycle, in_window, src, counters);
                            // The epoch attribution stays out of the cold
                            // injection helper: recover the injected
                            // flits (if any) from the window counter's
                            // delta.
                            if in_window {
                                probe.note_injected(cycle, counters.window_flits - flits_before);
                            }
                        }
                    }
                }
            }
            // Publish a parallel round over a snapshot of the active set.
            if let Some((shared, _)) = par {
                st.snap.clear();
                for (w, &word) in st.active.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        st.snap.push((w * 64 + b) as u32);
                        bits &= bits - 1;
                    }
                }
                if !st.snap.is_empty() && (k.force_parallel || st.snap.len() >= PAR_MIN_ACTIVE) {
                    let mut parts = 1usize;
                    for (g, lv) in shared.live.iter().enumerate() {
                        let live = lv.load(Ordering::Acquire);
                        shared.participating[g].store(live, Ordering::Relaxed);
                        if live {
                            parts += 1;
                        }
                    }
                    if parts > 1 {
                        round_job = shared.job.load(Ordering::Relaxed) + 1;
                        shared.cycle.store(cycle, Ordering::Relaxed);
                        shared.job.store(round_job, Ordering::Release);
                        round_parts = parts;
                    }
                }
            }
        }
        // Phase A: main arbitrates its own chunk stride alongside the
        // helpers, then waits for every counted participant's ack.
        if round_parts > 1 {
            let (shared, dec) = par.unwrap();
            {
                // SAFETY: shared-read region; helpers hold `&St` too.
                let st = unsafe { &*cell.0.get() };
                let len = st.snap.len();
                let mut chunk = 0usize;
                loop {
                    let lo = chunk * PAR_CHUNK;
                    if lo >= len {
                        break;
                    }
                    let hi = (lo + PAR_CHUNK).min(len);
                    for &o in &st.snap[lo..hi] {
                        let d = st.arbitrate(o as usize, cycle);
                        // SAFETY: chunk striding makes slot writes disjoint.
                        unsafe { *dec[o as usize].0.get() = d };
                    }
                    chunk += round_parts;
                }
            }
            for (h, p) in shared.participating.iter().enumerate() {
                if !p.load(Ordering::Relaxed) {
                    continue;
                }
                let mut spins = 0u32;
                loop {
                    let a = shared.acks[h].load(Ordering::Acquire);
                    if a == round_job {
                        break;
                    }
                    assert_ne!(a, u64::MAX, "parallel arbitration helper panicked");
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
        // Phase B: visit active links in ascending id order (the
        // reference loop's iteration order), reading the active set live
        // so commits at earlier links are visible to later ones within
        // the same cycle.  A cached phase-A decision is consumed only
        // when the `touched` stamps prove no earlier commit this cycle
        // mutated either endpoint router's arbitration-visible state.
        let committed = {
            // SAFETY: exclusive region — all round acks are in.
            let st = unsafe { &mut *cell.0.get() };
            let mut committed = false;
            let use_snap = round_parts > 1;
            let mut sp = 0usize;
            let mut scan = 0usize;
            while scan < l {
                let word = st.active[scan / 64] & (!0u64 << (scan % 64));
                if word == 0 {
                    scan = (scan / 64 + 1) * 64;
                    continue;
                }
                let o = (scan / 64) * 64 + word.trailing_zeros() as usize;
                scan = o + 1;
                let mut cached = None;
                if use_snap {
                    while sp < st.snap.len() && (st.snap[sp] as usize) < o {
                        sp += 1;
                    }
                    if sp < st.snap.len() && st.snap[sp] as usize == o {
                        sp += 1;
                        let (from, to) = st.net.links[o];
                        if st.touched[from] != cycle && st.touched[to] != cycle {
                            let (_, dec) = par.unwrap();
                            // SAFETY: round complete; slot write ordered
                            // by the ack acquire above.
                            let d = unsafe { *dec[o].0.get() };
                            debug_assert_eq!(
                                d,
                                st.arbitrate(o, cycle),
                                "stale cached arbitration at link {o}"
                            );
                            cached = Some(d);
                        }
                    }
                }
                let (d, pre) = match cached {
                    Some(d) => (d, None),
                    None => {
                        let (d, p) = st.arbitrate_pre(o, cycle);
                        (d, Some(p))
                    }
                };
                match d {
                    Decision::Busy => {
                        // Still serializing: park until the link frees.
                        clear_bit(&mut st.active, o as u32);
                        st.ring_push(st.lstate[o].free_at.min(cycle + st.ring_mask), o as u32);
                    }
                    Decision::Park(next_ready) => {
                        // Nothing can move.  With no candidate at all the
                        // link goes dark until an add or a new source head
                        // re-arms it; otherwise everything is still in
                        // flight — re-arm at the earliest arrival.
                        clear_bit(&mut st.active, o as u32);
                        if next_ready != u64::MAX {
                            st.ring_push(next_ready.min(cycle + st.ring_mask), o as u32);
                        }
                    }
                    Decision::CommitSource | Decision::CommitSlot(_) => {
                        committed = true;
                        match pre {
                            Some(p) => st.commit_pre(o, cycle, d, p, k, counters, probe, in_window),
                            None => st.commit(o, cycle, d, k, counters, probe, in_window),
                        }
                    }
                }
            }
            committed
        };
        // Quiescence / idle-stretch skip.  A cycle with zero commits
        // leaves the active set empty (every visited link parked; wakes
        // only happen on commits), so the state can next change at the
        // earliest ready/free/wake threshold — or the next scheduled
        // injection, when injection is schedule- or trace-driven.  Jump
        // there, or stop when there is none: only permanently stalled
        // packets remain and the report no longer changes.  Legacy coins
        // draw RNG every pre-measure-end cycle, so there the jump stays
        // restricted to the drain phase.
        if !committed && (cycle >= k.measure_end || rng_free) {
            // SAFETY: exclusive region.
            let st = unsafe { &mut *cell.0.get() };
            // A commit-free scan parks every woken link, so the active set
            // is empty and every pending state change is chained through
            // the calendar: an arrival or busy link re-arms its link at
            // (at most) its threshold cycle, and a clamped entry re-parks
            // itself forward on each early visit.  The earliest non-empty
            // bucket is therefore the exact next event — no resident or
            // link scan needed.  What has no calendar chain is
            // permanently stalled (unrouted or credit-deadlocked) and
            // never changes the report again.
            debug_assert!(st.active.iter().all(|&w| w == 0));
            let words = st.active.len();
            let mut next_event = u64::MAX;
            for b in 0..=st.ring_mask {
                if st.ring[b as usize * words..][..words]
                    .iter()
                    .any(|&w| w != 0)
                {
                    let delta = b.wrapping_sub(cycle + 1) & st.ring_mask;
                    next_event = next_event.min(cycle + 1 + delta);
                }
            }
            if cycle < k.measure_end {
                if let Some(s) = sched.as_mut() {
                    // Scheduled arrivals are not jump barriers in
                    // themselves: one that lands in a non-empty source
                    // queue only appends to the tail
                    // (`push_source_packet` wakes the first-hop link
                    // solely on the empty→head transition), so the idle
                    // stretch consumes such arrivals in place — same
                    // per-source streams, same due cycles, same order —
                    // and only ends where an arrival finds its queue
                    // empty and can actually wake something.  Saturated
                    // sweeps spend most of their post-collapse cycles
                    // exactly here.
                    while let Some(due) = s.next_due() {
                        if due >= next_event || due >= k.measure_end {
                            break;
                        }
                        let in_w = due >= k.measure_start;
                        let mut woke = false;
                        while let Some(ev) = s.pop_due(due, &k.sim.pattern, &k.layout, &k.sim.alive)
                        {
                            let src = ev.src as usize;
                            let flow = (src * st.net.n + ev.dst as usize) as u32;
                            if in_w {
                                counters.packets += 1;
                                counters.window_flits += ev.flits as u64;
                                counters.outstanding += 1;
                                probe.note_injected(due, ev.flits as u64);
                            }
                            woke |= st.source_queues[src].is_empty();
                            st.push_source_packet(due, src, ev.flits, flow);
                        }
                        if woke {
                            next_event = due;
                            break;
                        }
                    }
                } else if let Some(t) = &trace_cursor {
                    if let Some(due) = t.next_due() {
                        if due < k.measure_end {
                            next_event = next_event.min(due);
                        }
                    }
                }
            }
            if next_event == u64::MAX {
                break;
            }
            cycle = next_event;
        } else {
            cycle += 1;
        }
    }
}

/// Run one simulation at `offered_flits_per_node_cycle` on the compiled
/// representation.  Bit-identical to
/// [`NetworkSim::run_reference`](crate::NetworkSim::run_reference), in
/// every injection and parallel mode, for every worker count.
pub(crate) fn run_flat(
    sim: &NetworkSim<'_>,
    net: &CompiledNetwork,
    offered_flits_per_node_cycle: f64,
) -> SimReport {
    let cfg = sim.config();
    let n = net.n;
    let num_vcs = net.num_vcs;
    let l = net.links.len();
    let layout = sim.topo.layout().clone();
    let rng = SmallRng::seed_from_u64(point_seed(cfg.seed, offered_flits_per_node_cycle));
    let packets_per_cycle = (offered_flits_per_node_cycle / cfg.average_flits()).clamp(0.0, 1.0);
    // Trace replay schedule; identical construction to the reference loop,
    // so both engines drain the exact same injection sequence.
    let trace_cursor = sim
        .trace
        .as_deref()
        .map(|t| TraceCursor::new(t, offered_flits_per_node_cycle));
    // Batched injection schedule (synthetic traffic, Schedule mode only);
    // same construction as the reference engine, so both consume the
    // identical per-source streams.
    let sched = (sim.trace.is_none() && cfg.injection == InjectionMode::Schedule)
        .then(|| InjectionSchedule::for_run(cfg, offered_flits_per_node_cycle, &sim.alive));

    // Injection and class coins as exact integer compares: `gen_bool(p)`
    // draws a 53-bit unit float and tests `u < p`, which is equivalent to
    // `(bits >> 11) < ceil(p * 2^53)` — both sides of that compare are
    // exactly representable, so one u64 comparison replaces the
    // int-to-float conversion on the hottest RNG path while consuming the
    // identical draw sequence.
    const F53: f64 = 9_007_199_254_740_992.0; // 2^53
    let inject_thr = (packets_per_cycle * F53).ceil() as u64;
    let data_thr = (cfg.data_fraction * F53).ceil() as u64;
    let data_flits = cfg.flits(PacketClass::Data) as u32;
    let ctrl_flits = cfg.flits(PacketClass::Control) as u32;

    // Wake-ups past the ring horizon are clamped inward — an early wake is
    // harmless (the visit just re-parks), a missed one would not be.
    // `max_flits` bounds the largest packet the run can carry; the
    // credit-release wake skip relies on it, so under trace replay the
    // trace's largest message is folded in.
    let mut max_flits = data_flits.max(ctrl_flits) as u64;
    if let Some(t) = sim.trace.as_deref() {
        let largest = t.messages.iter().map(|m| m.flits as u64).max();
        max_flits = max_flits.max(largest.unwrap_or(0));
    }
    let horizon = max_flits + cfg.link_latency + cfg.router_latency + 2;
    let ring_len = (horizon as usize + 1).next_power_of_two().max(16);
    let ring_mask = ring_len as u64 - 1;

    let total_cycles = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles;
    let measure_start = cfg.warmup_cycles;
    let measure_end = cfg.warmup_cycles + cfg.measure_cycles;

    let k = Knobs {
        sim,
        layout,
        measure_start,
        measure_end,
        total_cycles,
        inject_thr,
        data_thr,
        data_flits,
        ctrl_flits,
        max_flits,
        link_latency: cfg.link_latency,
        router_latency: cfg.router_latency,
        num_links: l,
        force_parallel: cfg.parallel == ParallelMode::Force,
    };
    let mut counters = Counters {
        stats: LatencyStats::new(),
        packets: 0,
        window_flits: 0,
        outstanding: 0,
        packets_ejected: 0,
        flits_ejected: 0,
    };
    let mut probe = EpochProbe::new(cfg, measure_start, measure_end);
    let cell = StCell(UnsafeCell::new(St {
        net,
        num_vcs,
        vc_buffer_flits: cfg.vc_buffer_flits as u64,
        lstate: vec![LinkState::IDLE; l],
        routers: vec![
            RouterState {
                flits: 0,
                active_cycles: 0,
                last_active: u64::MAX,
                buf: RouterBuf {
                    buffered: 0,
                    since: 0,
                    flit_cycles: 0,
                },
            };
            n
        ],
        vc_occ: vec![0; l * num_vcs],
        residents: vec![Vec::new(); n],
        cand_keys: vec![Vec::new(); l],
        cand_ready: vec![Vec::new(); l],
        active: vec![0; l.div_ceil(64)],
        ring: vec![0; ring_len * l.div_ceil(64)],
        ring_mask,
        source_queues: vec![VecDeque::new(); n],
        head_out: vec![NONE; n],
        touched: vec![u64::MAX; n],
        snap: Vec::new(),
    }));

    // Engage helpers only when the mode, network size and pool width all
    // agree; the recorded results are identical either way.
    let pool: Option<&WorkerPool> = match cfg.parallel {
        ParallelMode::Off => None,
        ParallelMode::Auto => {
            if n >= PAR_MIN_ROUTERS {
                let p = sim.pool.unwrap_or_else(|| WorkerPool::global());
                (p.threads() >= 2).then_some(p)
            } else {
                None
            }
        }
        ParallelMode::Force => Some(sim.pool.unwrap_or_else(|| WorkerPool::global())),
    };
    if let Some(pool) = pool {
        let helper_count = pool.threads().clamp(1, PAR_MAX_HELPERS);
        let shared = ParShared::new(helper_count);
        let dec: Vec<DecSlot> = (0..l)
            .map(|_| DecSlot(UnsafeCell::new(Decision::Busy)))
            .collect();
        let helpers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..helper_count)
            .map(|h| {
                let cell = &cell;
                let shared = &shared;
                let dec = &dec[..];
                Box::new(move || helper_loop(h, cell, dec, shared)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.assist(helpers, || {
            let _finish = FinishGuard(&shared.finished);
            run_cycles(
                &cell,
                &k,
                rng,
                trace_cursor,
                sched,
                &mut counters,
                &mut probe,
                Some((&shared, &dec)),
            );
        });
    } else {
        run_cycles(
            &cell,
            &k,
            rng,
            trace_cursor,
            sched,
            &mut counters,
            &mut probe,
            None,
        );
    }
    let mut st = cell.0.into_inner();

    // Settle the lazily integrated buffer occupancies up to the end of the
    // measurement window, then close any epochs still open.
    for rs in st.routers.iter_mut() {
        rs.buf.accrue(measure_end, measure_start, measure_end);
    }
    let epochs = probe.finish(&st.routers);
    let measure_cycles = cfg.measure_cycles as f64;
    let injected = counters.window_flits as f64 / (n as f64 * measure_cycles);
    let accepted = counters.flits_ejected as f64 / (n as f64 * measure_cycles);
    let activity = ActivityProfile {
        measured_cycles: cfg.measure_cycles,
        links: net
            .links
            .iter()
            .enumerate()
            .map(|(idx, &(from, to))| LinkActivity {
                from,
                to,
                flits: st.lstate[idx].flits,
                busy_cycles: st.lstate[idx].busy_cycles,
            })
            .collect(),
        routers: (0..n)
            .map(|r| RouterActivity {
                router: r,
                flits_forwarded: st.routers[r].flits,
                active_cycles: st.routers[r].active_cycles,
                buffer_flit_cycles: st.routers[r].buf.flit_cycles,
            })
            .collect(),
    };
    let avg_latency_cycles = counters.stats.mean();
    SimReport {
        offered_flits_per_node_cycle,
        injected_flits_per_node_cycle: injected,
        accepted_flits_per_node_cycle: accepted,
        avg_latency_cycles,
        p95_latency_cycles: counters.stats.percentile(0.95),
        p99_latency_cycles: counters.stats.percentile(0.99),
        avg_latency_ns: cfg.cycles_to_ns(avg_latency_cycles),
        packets_injected: counters.packets,
        packets_ejected: counters.packets_ejected,
        packets_unfinished: counters.outstanding,
        avg_link_utilization: activity.avg_link_utilization(),
        activity,
        epochs,
        latency: counters.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_route::paths::all_shortest_paths;
    use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    #[test]
    fn compiled_tables_cover_every_routed_flow() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let net = CompiledNetwork::compile(&mesh, &table, Some(&alloc), &SimConfig::quick());
        assert_eq!(net.num_links(), mesh.num_directed_links());
        assert_eq!(net.num_routed_flows(), table.num_routed_flows());
        // Total hop entries = sum of per-flow hop counts.
        let expected_hops: usize = table.flows().map(|(_, p)| p.len() - 1).sum();
        assert_eq!(net.num_hops(), expected_hops);
        // Every compiled hop refers to a real link, in path order.
        for (flow, path) in table.flows() {
            let fi = flow.src * 20 + flow.dst;
            let off = net.path_offsets[fi] as usize;
            let end = net.path_offsets[fi + 1] as usize;
            assert_eq!(end - off, path.len() - 1);
            for (k, pair) in path.windows(2).enumerate() {
                let link = net.hops[off + k];
                assert_ne!(link, NONE);
                assert_eq!(net.links[link as usize], (pair[0], pair[1]));
            }
            assert_eq!(net.first_hop(fi as u32), net.hops[off]);
        }
    }

    #[test]
    fn unrouted_flows_compile_to_empty_ranges() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let table = RoutingTable::new(20, "empty");
        let net = CompiledNetwork::compile(&mesh, &table, None, &SimConfig::quick());
        assert_eq!(net.num_routed_flows(), 0);
        assert_eq!(net.num_hops(), 0);
        assert_eq!(net.first_hop(0), NONE);
    }

    #[test]
    fn flat_run_matches_reference_on_a_mesh() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        for load in [0.02, 0.3, 0.9] {
            assert_eq!(sim.run(load), sim.run_reference(load), "load {load}");
        }
    }

    #[test]
    fn legacy_coin_mode_matches_reference() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig {
                injection: InjectionMode::LegacyCoins,
                ..SimConfig::quick()
            })
            .build();
        for load in [0.02, 0.3, 0.9] {
            assert_eq!(sim.run(load), sim.run_reference(load), "load {load}");
        }
    }

    #[test]
    fn forced_parallelism_is_bit_identical_to_sequential() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let base = SimConfig {
            epoch_cycles: 250,
            ..SimConfig::quick()
        };
        let seq = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig {
                parallel: ParallelMode::Off,
                ..base.clone()
            })
            .build();
        let pool = WorkerPool::new(2);
        let par = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .pool(&pool)
            .config(SimConfig {
                parallel: ParallelMode::Force,
                ..base
            })
            .build();
        for load in [0.05, 0.3, 0.9] {
            assert_eq!(par.run(load), seq.run(load), "load {load}");
        }
    }

    #[test]
    fn epoch_probe_is_off_by_default_and_reference_never_fills_it() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        assert!(sim.run(0.2).epochs.is_none());
        assert!(sim.run_reference(0.2).epochs.is_none());
    }

    #[test]
    fn epoch_probe_slices_the_window_and_sums_to_the_report() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let config = SimConfig {
            epoch_cycles: 400, // 1500-cycle window -> 4 epochs, last short
            ..SimConfig::quick()
        };
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(config.clone())
            .build();
        let report = sim.run(0.2);
        let series = report.epochs.as_ref().expect("probe enabled");
        assert_eq!(series.epoch_cycles, 400);
        assert_eq!(series.samples.len(), 4);
        let measure_start = config.warmup_cycles;
        let measure_end = config.warmup_cycles + config.measure_cycles;
        for (e, s) in series.samples.iter().enumerate() {
            assert_eq!(s.start_cycle, measure_start + e as u64 * 400);
            assert_eq!(s.end_cycle, (s.start_cycle + 400).min(measure_end));
            assert!(s.mean_latency_cycles >= 0.0);
            assert!(s.p95_latency_cycles >= s.mean_latency_cycles * 0.5);
        }
        // Per-epoch counters partition the window totals exactly.
        let n = 20.0;
        let measure = config.measure_cycles as f64;
        let injected: u64 = series.samples.iter().map(|s| s.injected_flits).sum();
        let accepted: u64 = series.samples.iter().map(|s| s.accepted_flits).sum();
        let ejected: u64 = series.samples.iter().map(|s| s.packets_ejected).sum();
        assert!(
            (injected as f64 / (n * measure) - report.injected_flits_per_node_cycle).abs() < 1e-12
        );
        assert!(
            (accepted as f64 / (n * measure) - report.accepted_flits_per_node_cycle).abs() < 1e-12
        );
        assert_eq!(ejected, report.packets_ejected);
        assert!(injected > 0, "a 20% load must inject in every window");
        // At a sustainable load with nonzero latency some buffers are
        // occupied at least at one epoch boundary.
        assert!(series.samples.iter().any(|s| s.accepted_flits > 0));
    }

    #[test]
    fn epoch_probe_does_not_perturb_the_simulation() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let off = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let on = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig {
                epoch_cycles: 250,
                ..SimConfig::quick()
            })
            .build();
        for load in [0.05, 0.3, 0.9] {
            let mut probed = on.run(load);
            assert!(probed.epochs.take().is_some());
            assert_eq!(probed, off.run(load), "load {load}");
        }
    }

    #[test]
    fn quiescence_skip_preserves_full_drain_semantics() {
        // A drain window far longer than the traffic needs: the skip path
        // must cut straight to the end without changing any statistic.
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let config = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 500,
            drain_cycles: 100_000,
            ..SimConfig::default()
        };
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(config)
            .build();
        let report = sim.run(0.1);
        assert_eq!(report, sim.run_reference(0.1));
        assert_eq!(report.packets_unfinished, 0);
    }
}
