//! The compiled flat-state simulation engine.
//!
//! [`NetworkSim::run`](crate::NetworkSim::run) used to spend most of its
//! time in two places: a per-link scan over *all* of a router's resident
//! packets (each probing `RoutingTable::next_hop`, a linear search along
//! the flow's path vector), and a `HashMap` lookup per injected packet for
//! the VC assignment.  [`CompiledNetwork`] removes both by compiling the
//! routing table and VC allocation into dense arrays once per
//! `(topology, table, vcs)`:
//!
//! * every flow's path is lowered to a CSR-packed sequence of *link ids*
//!   (`path_offsets` / `hops`), so "where does this packet go next" is one
//!   indexed load instead of a path search;
//! * the VC of every flow is a dense `vc_of_flow` array;
//! * at run time each output link keeps a *candidate list* of the resident
//!   packets that want it, so allocation touches only eligible packets —
//!   plus a one-bit-per-link `active` set, letting the per-cycle allocation
//!   pass skip links with no candidates entirely;
//! * once traffic generation stops (the drain phase), cycles in which
//!   provably nothing can move — every candidate still in flight, every
//!   contended link still busy — are skipped in one jump to the next
//!   ready/free threshold.
//!
//! The engine replays the exact event sequence of the scan-based loop
//! ([`NetworkSim::run_reference`](crate::NetworkSim::run_reference)): the
//! same RNG draws in the same order, the same winner for every output link
//! (oldest-first with the same scan-order tie-breaking, source queues
//! losing ties), the same mid-cycle visibility of earlier links' commits.
//! Reports are bit-identical; the `compiled_equivalence` proptests assert
//! that across random topologies, patterns, loads and failure masks.

use crate::activity::{ActivityProfile, LinkActivity, RouterActivity};
use crate::config::{PacketClass, SimConfig};
use crate::network::{point_seed, EpochSample, EpochSeries, NetworkSim, SimReport};
use crate::stats::LatencyStats;
use netsmith_route::{Flow, RoutingTable, VcAllocation};
use netsmith_topo::{Layout, RouterId, Topology};
use netsmith_trace::TraceCursor;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::collections::VecDeque;

/// Sentinel for "no link": an unrouted flow, an empty source queue, a
/// resident with no physical output (packets on such flows block forever,
/// exactly as under the reference scan).
const NONE: u32 = u32::MAX;

/// The routing table, VC allocation and link structure of one network,
/// lowered to dense index arrays.  Owned (no borrows), built once per
/// `(topology, table, vcs)` and reused across every load point of a sweep.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    n: usize,
    /// Directed links in `Topology::links` iteration order; positions are
    /// the link ids every other array is keyed by.
    links: Vec<(RouterId, RouterId)>,
    /// CSR offsets into `hops`, one slot per flow (`src * n + dst`), plus a
    /// final end sentinel.  An empty range means the flow is unrouted.
    path_offsets: Vec<u32>,
    /// Concatenated per-flow paths as link ids.  A `NONE` entry marks a
    /// table hop with no physical link (an invalid table): packets reaching
    /// it stall forever, matching the reference scan.
    hops: Vec<u32>,
    /// Per-flow virtual channel, already clamped to `num_vcs - 1`.
    vc_of_flow: Vec<u32>,
    num_vcs: usize,
}

impl CompiledNetwork {
    /// Lower `(topology, table, vcs)` into the flat representation.
    pub(crate) fn compile(
        topo: &Topology,
        table: &RoutingTable,
        vcs: Option<&VcAllocation>,
        config: &SimConfig,
    ) -> Self {
        let n = topo.num_routers();
        let links: Vec<(RouterId, RouterId)> = topo.links().collect();
        let mut link_id = vec![NONE; n * n];
        for (idx, &(from, to)) in links.iter().enumerate() {
            link_id[from * n + to] = idx as u32;
        }
        let mut path_offsets = Vec::with_capacity(n * n + 1);
        let mut hops = Vec::new();
        let mut vc_of_flow = vec![0u32; n * n];
        path_offsets.push(0u32);
        for src in 0..n {
            for dst in 0..n {
                if let Some(path) = table.path(src, dst) {
                    for pair in path.windows(2) {
                        hops.push(link_id[pair[0] * n + pair[1]]);
                    }
                }
                path_offsets.push(hops.len() as u32);
                vc_of_flow[src * n + dst] = vcs
                    .and_then(|a| a.assignment.get(&Flow::new(src, dst)).copied())
                    .unwrap_or(0)
                    .min(config.num_vcs - 1) as u32;
            }
        }
        CompiledNetwork {
            n,
            links,
            path_offsets,
            hops,
            vc_of_flow,
            num_vcs: config.num_vcs,
        }
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of routed flows.
    pub fn num_routed_flows(&self) -> usize {
        self.path_offsets.windows(2).filter(|w| w[1] > w[0]).count()
    }

    /// Total compiled hop entries across all flows.
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// First-hop link of a flow (`NONE` when unrouted).
    #[inline]
    fn first_hop(&self, flow: u32) -> u32 {
        let off = self.path_offsets[flow as usize] as usize;
        let end = self.path_offsets[flow as usize + 1] as usize;
        if off == end {
            NONE
        } else {
            self.hops[off]
        }
    }
}

/// A packet resident in a router's input buffer, flat form.  Slab-stored
/// per router; `cand_pos` back-points into the candidate list of
/// `out_link` so both sides update in O(1) under `swap_remove`.
#[derive(Debug, Clone)]
struct FlatResident {
    created: u64,
    ready_at: u64,
    flits: u32,
    vc: u32,
    flow: u32,
    /// Index (within the flow's hop sequence) of the next link to take.
    next_idx: u32,
    /// Link whose downstream VC buffer the packet occupies.
    in_link: u32,
    /// The next link to take (`hops[off + next_idx]`), or `NONE` when the
    /// table has no physical link there (the packet stalls forever).
    out_link: u32,
    /// Position of this resident's entry in `cands[out_link]`.
    cand_pos: u32,
}

/// A freshly injected packet waiting in a source queue.
#[derive(Debug, Clone)]
struct FlatPacket {
    created: u64,
    flits: u32,
    vc: u32,
    flow: u32,
}

/// A candidate entry in an output link's list: the resident's slab slot
/// plus the two immutable fields arbitration reads, inlined so the winner
/// scan walks one contiguous array instead of chasing into the slab.
#[derive(Debug, Clone, Copy)]
struct Cand {
    slot: u32,
    created: u64,
    ready_at: u64,
}

/// Hot per-link state: the cycle the link is serializing until, plus the
/// measurement-window activity counters, packed so a commit touches one
/// location per link.  `free_at` is monotone — a link only ever gets
/// busier — which is what makes busy-aware wake-ups (see [`wake`]) exact.
#[derive(Debug, Clone, Copy)]
struct LinkState {
    free_at: u64,
    flits: u64,
    busy_cycles: u64,
}

impl LinkState {
    const IDLE: LinkState = LinkState {
        free_at: 0,
        flits: 0,
        busy_cycles: 0,
    };
}

/// Per-router buffered-flit occupancy, integrated lazily: the reference
/// loop samples `buffered` once per measurement cycle (before that cycle's
/// commits), so a value set during cycle `c` counts for sample cycles
/// `c + 1 ..`.  `accrue` settles the closed interval since the previous
/// change; called at every change point and once at the end, it reproduces
/// the per-cycle sum exactly without an O(routers) pass per cycle.
#[derive(Debug, Clone, Copy)]
struct RouterBuf {
    buffered: u64,
    /// First sample cycle the current `buffered` value applies to.
    since: u64,
    flit_cycles: u64,
}

impl RouterBuf {
    #[inline]
    fn accrue(&mut self, change_cycle: u64, measure_start: u64, measure_end: u64) {
        let lo = self.since.max(measure_start);
        let hi = (change_cycle + 1).min(measure_end);
        if hi > lo {
            self.flit_cycles += self.buffered * (hi - lo);
        }
        self.since = change_cycle + 1;
    }
}

/// Windowed per-router activity accounting, packed so a commit's updates
/// (forwarded flits, active-cycle edge detection, buffer accrual) land on
/// one cache line per router instead of four parallel arrays.
#[derive(Debug, Clone, Copy)]
struct RouterState {
    /// Flits forwarded during the measurement window.
    flits: u64,
    /// Measurement cycles with at least one commit out of this router.
    active_cycles: u64,
    /// Last cycle counted in `active_cycles` (edge detector).
    last_active: u64,
    buf: RouterBuf,
}

#[inline]
fn set_bit(active: &mut [u64], link: u32) {
    active[(link / 64) as usize] |= 1u64 << (link % 64);
}

#[inline]
fn clear_bit(active: &mut [u64], link: u32) {
    active[(link / 64) as usize] &= !(1u64 << (link % 64));
}

/// Make `link` get examined again as soon as examining it could matter:
/// immediately when the link is idle, otherwise at `free_at` through the
/// ring — a busy link cannot commit before it frees, and `free_at` only
/// grows through the link's own commits (which re-arm it themselves), so
/// deferring the visit is exact and skips every pointless busy-check in
/// between.  Duplicate wake-ups are harmless: a visit that finds nothing
/// to do parks the link again.
#[inline]
fn wake(
    lstate: &[LinkState],
    active: &mut [u64],
    ring: &mut [Vec<u32>],
    ring_mask: u64,
    cycle: u64,
    link: u32,
) {
    let free_at = lstate[link as usize].free_at;
    if free_at > cycle {
        let t = free_at.min(cycle + ring_mask);
        ring[(t & ring_mask) as usize].push(link);
    } else {
        set_bit(active, link);
    }
}

/// Insert a resident into router `to`'s slab and register it with its
/// output link's candidate list.  The output link is woken through the
/// ring at `max(ready_at, free_at)` rather than immediately: the new
/// candidate cannot move before it arrives, the link cannot commit before
/// it frees, and every earlier visit would find nothing — waking at the
/// later of the two is exact and skips all of those visits.
#[inline]
#[allow(clippy::too_many_arguments)]
fn add_resident(
    residents: &mut [Vec<FlatResident>],
    cands: &mut [Vec<Cand>],
    lstate: &[LinkState],
    ring: &mut [Vec<u32>],
    ring_mask: u64,
    cycle: u64,
    to: usize,
    mut r: FlatResident,
) {
    let slot = residents[to].len() as u32;
    if r.out_link != NONE {
        let list = &mut cands[r.out_link as usize];
        r.cand_pos = list.len() as u32;
        list.push(Cand {
            slot,
            created: r.created,
            ready_at: r.ready_at,
        });
        let t = r
            .ready_at
            .max(lstate[r.out_link as usize].free_at)
            .min(cycle + ring_mask);
        ring[(t & ring_mask) as usize].push(r.out_link);
    } else {
        r.cand_pos = NONE;
    }
    residents[to].push(r);
}

/// Remove slot `ri` from router `from`'s slab, keeping every surviving
/// resident's slot/candidate cross-references consistent under the two
/// `swap_remove`s.  The caller parks the committed link; a link whose
/// candidate got renumbered is re-armed here (its tie-break key changed,
/// which can change the winner a parked link was blocked on).
#[inline]
#[allow(clippy::too_many_arguments)]
fn remove_resident(
    residents: &mut [Vec<FlatResident>],
    cands: &mut [Vec<Cand>],
    lstate: &[LinkState],
    active: &mut [u64],
    ring: &mut [Vec<u32>],
    ring_mask: u64,
    cycle: u64,
    from: usize,
    ri: u32,
) {
    let ri_us = ri as usize;
    let (out, pos) = {
        let r = &residents[from][ri_us];
        (r.out_link, r.cand_pos)
    };
    if out != NONE {
        let list = &mut cands[out as usize];
        list.swap_remove(pos as usize);
        if (pos as usize) < list.len() {
            // The entry moved into `pos` belongs to another resident:
            // repair its back-pointer.
            let moved_slot = list[pos as usize].slot as usize;
            residents[from][moved_slot].cand_pos = pos;
        }
    }
    residents[from].swap_remove(ri_us);
    if ri_us < residents[from].len() {
        // The slab's last resident moved into `ri`: repair its candidate
        // entry (its `cand_pos` is already correct, possibly fixed above)
        // and re-arm that link — slot renumbering changes the
        // `(created, slot)` tie-break key, which can change the winner a
        // parked link was blocked on.
        let moved = &residents[from][ri_us];
        if moved.cand_pos != NONE {
            let out = moved.out_link;
            cands[out as usize][moved.cand_pos as usize].slot = ri;
            wake(lstate, active, ring, ring_mask, cycle, out);
        }
    }
}

/// Injection counters advanced by [`inject_packet`] and folded into the
/// final [`SimReport`].
struct InjectCounts {
    packets: u64,
    window_flits: u64,
    outstanding: u64,
}

/// The rare injection-hit path, outlined from the per-source coin loop in
/// [`run_flat`].  Kept out of line deliberately: inlined, the queue and
/// wake machinery forces the RNG state and loop bounds into the stack on
/// every coin draw, and the common *miss* path pays for it (~2 ns/draw on
/// the fig08 configs, where misses outnumber hits ~30:1).
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn inject_packet(
    sim: &NetworkSim<'_>,
    net: &CompiledNetwork,
    layout: &Layout,
    rng: &mut SmallRng,
    data_thr: u64,
    data_flits: u32,
    ctrl_flits: u32,
    cycle: u64,
    in_window: bool,
    src: usize,
    counts: &mut InjectCounts,
    source_queues: &mut [VecDeque<FlatPacket>],
    head_out: &mut [u32],
    lstate: &[LinkState],
    active: &mut [u64],
    ring: &mut [Vec<u32>],
    ring_mask: u64,
) {
    // RNG draw order matches the reference loop exactly: the destination
    // sample happens here, and the class coin only if the destination is
    // routable and alive.
    let Some(dst) = sim.pattern.sample_destination(layout, src, rng) else {
        return;
    };
    if !sim.alive[dst] {
        return;
    }
    let flits = if (rng.next_u64() >> 11) < data_thr {
        data_flits
    } else {
        ctrl_flits
    };
    let flow = (src * net.n + dst) as u32;
    if in_window {
        counts.packets += 1;
        counts.window_flits += flits as u64;
        counts.outstanding += 1;
    }
    let queue = &mut source_queues[src];
    queue.push_back(FlatPacket {
        created: cycle,
        flits,
        vc: net.vc_of_flow[flow as usize],
        flow,
    });
    if queue.len() == 1 {
        let first = net.first_hop(flow);
        head_out[src] = first;
        if first != NONE {
            wake(lstate, active, ring, ring_mask, cycle, first);
        }
    }
}

/// Run one simulation at `offered_flits_per_node_cycle` on the compiled
/// representation.  Bit-identical to
/// [`NetworkSim::run_reference`](crate::NetworkSim::run_reference).
pub(crate) fn run_flat(
    sim: &NetworkSim<'_>,
    net: &CompiledNetwork,
    offered_flits_per_node_cycle: f64,
) -> SimReport {
    let cfg = sim.config();
    let n = net.n;
    let num_vcs = net.num_vcs;
    let links = &net.links;
    let l = links.len();
    let layout = sim.topo.layout().clone();
    let mut rng = SmallRng::seed_from_u64(point_seed(cfg.seed, offered_flits_per_node_cycle));
    let packets_per_cycle = (offered_flits_per_node_cycle / cfg.average_flits()).clamp(0.0, 1.0);
    // Trace replay schedule; identical construction to the reference loop,
    // so both engines drain the exact same injection sequence.
    let mut trace_cursor = sim
        .trace
        .as_deref()
        .map(|t| TraceCursor::new(t, offered_flits_per_node_cycle));

    let mut lstate: Vec<LinkState> = vec![LinkState::IDLE; l];
    // Windowed activity accounting (measurement cycles only), one struct
    // per router so a commit touches a single cache line of it.
    let mut routers: Vec<RouterState> = vec![
        RouterState {
            flits: 0,
            active_cycles: 0,
            last_active: u64::MAX,
            buf: RouterBuf {
                buffered: 0,
                since: 0,
                flit_cycles: 0,
            },
        };
        n
    ];

    // Injection and class coins as exact integer compares: `gen_bool(p)`
    // draws a 53-bit unit float and tests `u < p`, which is equivalent to
    // `(bits >> 11) < ceil(p * 2^53)` — both sides of that compare are
    // exactly representable, so one u64 comparison replaces the
    // int-to-float conversion on the hottest RNG path while consuming the
    // identical draw sequence.
    const F53: f64 = 9_007_199_254_740_992.0; // 2^53
    let inject_thr = (packets_per_cycle * F53).ceil() as u64;
    let data_thr = (cfg.data_fraction * F53).ceil() as u64;
    let data_flits = cfg.flits(PacketClass::Data) as u32;
    let ctrl_flits = cfg.flits(PacketClass::Control) as u32;

    // Parking calendar: a link with provably nothing to do until a known
    // cycle leaves the active set and re-arms through this ring.  Wake-ups
    // past the horizon are clamped inward — an early wake is harmless (the
    // visit just re-parks), a missed one would not be.  `max_flits` bounds
    // the largest packet the run can carry; the credit-release wake skip
    // below relies on it, so under trace replay the trace's largest
    // message is folded in.
    let mut max_flits = data_flits.max(ctrl_flits) as u64;
    if let Some(t) = sim.trace.as_deref() {
        let largest = t.messages.iter().map(|m| m.flits as u64).max();
        max_flits = max_flits.max(largest.unwrap_or(0));
    }
    let horizon = max_flits + cfg.link_latency + cfg.router_latency + 2;
    let ring_len = (horizon as usize + 1).next_power_of_two().max(16);
    let ring_mask = ring_len as u64 - 1;
    let mut ring: Vec<Vec<u32>> = vec![Vec::new(); ring_len];

    // Flat per-(link, VC) buffer occupancy in flits.
    let mut vc_occ: Vec<u32> = vec![0; l * num_vcs];
    // Per-router resident slabs; slot order matches the reference loop's
    // `swap_remove` order exactly (tie-breaking depends on it).
    let mut residents: Vec<Vec<FlatResident>> = vec![Vec::new(); n];
    // Per-output-link candidate lists (slots into the driving router's
    // slab), cached arbitration results, and the one-bit-per-link active
    // set over them.
    let mut cands: Vec<Vec<Cand>> = vec![Vec::new(); l];
    let mut active: Vec<u64> = vec![0; l.div_ceil(64)];
    // Source (injection) queues plus the out-link of each queue's head.
    let mut source_queues: Vec<VecDeque<FlatPacket>> = vec![VecDeque::new(); n];
    let mut head_out: Vec<u32> = vec![NONE; n];

    let total_cycles = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles;
    let measure_start = cfg.warmup_cycles;
    let measure_end = cfg.warmup_cycles + cfg.measure_cycles;

    let mut stats = LatencyStats::new();
    let mut inj = InjectCounts {
        packets: 0,
        window_flits: 0,
        outstanding: 0,
    };
    let mut packets_ejected = 0u64;
    let mut flits_ejected_in_window = 0u64;

    // Epoch probe: when `cfg.epoch_cycles > 0`, the measurement window is
    // sliced into fixed-length epochs and per-epoch counters are kept
    // alongside the window totals.  Attribution mirrors the window
    // counters — injections by injection cycle, accepted flits by arrival
    // cycle, latency samples by creation cycle — so every epoch column
    // sums (or averages) back to the corresponding report field.  Epoch
    // ends are detected at the loop head; in-window cycles always advance
    // by one (the quiescence skip requires `cycle >= measure_end`), so no
    // boundary can be jumped over with state changes in between.
    // Disabled, the probe costs one always-false compare per cycle
    // (`next_epoch_end` is `u64::MAX`) and a `num_epochs > 0` test per
    // commit.
    let epoch_len = cfg.epoch_cycles;
    let num_epochs = if epoch_len > 0 {
        cfg.measure_cycles.div_ceil(epoch_len) as usize
    } else {
        0
    };
    let mut epoch_injected = vec![0u64; num_epochs];
    let mut epoch_accepted = vec![0u64; num_epochs];
    let mut epoch_ejected = vec![0u64; num_epochs];
    let mut epoch_stats = vec![LatencyStats::new(); num_epochs];
    let mut epoch_buffered = vec![0u64; num_epochs];
    let mut epoch_idx = 0usize;
    let mut next_epoch_end = if num_epochs > 0 {
        (measure_start + epoch_len).min(measure_end)
    } else {
        u64::MAX
    };

    let mut cycle: u64 = 0;
    while cycle < total_cycles {
        // Close finished epochs: snapshot the instantaneous buffered-flit
        // occupancy as of the epoch boundary (all commits of the epoch's
        // last cycle have happened; nothing of this cycle has).
        while cycle >= next_epoch_end && epoch_idx < num_epochs {
            epoch_buffered[epoch_idx] = routers.iter().map(|r| r.buf.buffered).sum();
            epoch_idx += 1;
            next_epoch_end = if epoch_idx < num_epochs {
                (measure_start + (epoch_idx as u64 + 1) * epoch_len).min(measure_end)
            } else {
                u64::MAX
            };
        }
        let in_window = cycle >= measure_start && cycle < measure_end;
        // 0a. Wake parked links whose scheduled cycle has arrived.
        {
            let bucket = &mut ring[(cycle & ring_mask) as usize];
            for &link in bucket.iter() {
                active[(link / 64) as usize] |= 1u64 << (link % 64);
            }
            bucket.clear();
        }
        // (Buffer occupancy for the router activity profile is integrated
        // lazily at change points — see `RouterBuf::accrue` — instead of
        // the reference loop's per-cycle sampling pass.)
        // 1. Traffic generation — the RNG draw sequence (injection coin,
        //    destination sample, class coin) matches the reference loop
        //    call for call.
        if cycle < measure_end {
            if let Some(cursor) = trace_cursor.as_mut() {
                // Trace replay: no coins, no RNG — drain every message due
                // this cycle, mirroring the reference loop's trace branch
                // (and `inject_packet`'s queue/wake tail) exactly.
                while let Some(m) = cursor.pop_due(cycle) {
                    let (src, dst) = (m.src as usize, m.dst as usize);
                    if !sim.alive[src] || !sim.alive[dst] {
                        continue;
                    }
                    let flits = m.flits;
                    let flow = (src * net.n + dst) as u32;
                    if in_window {
                        inj.packets += 1;
                        inj.window_flits += flits as u64;
                        inj.outstanding += 1;
                        if num_epochs > 0 {
                            epoch_injected[((cycle - measure_start) / epoch_len) as usize] +=
                                flits as u64;
                        }
                    }
                    let queue = &mut source_queues[src];
                    queue.push_back(FlatPacket {
                        created: cycle,
                        flits,
                        vc: net.vc_of_flow[flow as usize],
                        flow,
                    });
                    if queue.len() == 1 {
                        let first = net.first_hop(flow);
                        head_out[src] = first;
                        if first != NONE {
                            wake(&lstate, &mut active, &mut ring, ring_mask, cycle, first);
                        }
                    }
                }
            } else {
                for (src, &alive) in sim.alive.iter().enumerate() {
                    if alive && (rng.next_u64() >> 11) < inject_thr {
                        let flits_before = inj.window_flits;
                        inject_packet(
                            sim,
                            net,
                            &layout,
                            &mut rng,
                            data_thr,
                            data_flits,
                            ctrl_flits,
                            cycle,
                            in_window,
                            src,
                            &mut inj,
                            &mut source_queues,
                            &mut head_out,
                            &lstate,
                            &mut active,
                            &mut ring,
                            ring_mask,
                        );
                        // The epoch attribution stays out of the cold
                        // injection helper: recover the injected flits (if
                        // any) from the window counter's delta.
                        if num_epochs > 0 && in_window {
                            epoch_injected[((cycle - measure_start) / epoch_len) as usize] +=
                                inj.window_flits - flits_before;
                        }
                    }
                }
            }
        }

        // 2. Link/switch allocation: visit links with candidates in
        //    ascending id order (the reference loop's iteration order),
        //    reading the active set live so commits at earlier links are
        //    visible to later ones within the same cycle.
        let mut committed = false;
        let mut scan = 0usize;
        while scan < l {
            let word = active[scan / 64] & (!0u64 << (scan % 64));
            if word == 0 {
                scan = (scan / 64 + 1) * 64;
                continue;
            }
            let o = (scan / 64) * 64 + word.trailing_zeros() as usize;
            scan = o + 1;
            let free_at = lstate[o].free_at;
            if free_at > cycle {
                // Still serializing: park until the link frees.
                clear_bit(&mut active, o as u32);
                let t = free_at.min(cycle + ring_mask);
                ring[(t & ring_mask) as usize].push(o as u32);
                continue;
            }
            let (from, to) = links[o];
            // Oldest eligible resident; ties go to the lowest slot, which
            // is exactly the reference scan's first-strictly-older rule.
            let mut best_created = u64::MAX;
            let mut best_slot = NONE;
            let mut next_ready = u64::MAX;
            for c in &cands[o] {
                if c.ready_at > cycle {
                    next_ready = next_ready.min(c.ready_at);
                    continue;
                }
                if c.created < best_created || (c.created == best_created && c.slot < best_slot) {
                    best_created = c.created;
                    best_slot = c.slot;
                }
            }
            // The source-queue head loses ties to residents, as in the
            // reference loop.
            let from_source = head_out[from] == o as u32
                && source_queues[from]
                    .front()
                    .is_some_and(|h| h.created < best_created);
            if !from_source && best_slot == NONE {
                // Nothing can move.  With no candidate at all the link goes
                // dark until an add or a new source head re-arms it;
                // otherwise everything is still in flight — re-arm at the
                // earliest arrival.
                clear_bit(&mut active, o as u32);
                if next_ready != u64::MAX {
                    let t = next_ready.min(cycle + ring_mask);
                    ring[(t & ring_mask) as usize].push(o as u32);
                }
                continue;
            }
            let (created, flits, vc, flow, next_idx, in_link) = if from_source {
                let h = source_queues[from].front().unwrap();
                (h.created, h.flits, h.vc, h.flow, 0u32, NONE)
            } else {
                let r = &residents[from][best_slot as usize];
                (r.created, r.flits, r.vc, r.flow, r.next_idx, r.in_link)
            };
            let off = net.path_offsets[flow as usize] as usize;
            let path_len = net.path_offsets[flow as usize + 1] as usize - off;
            let ejecting = next_idx as usize + 1 == path_len;
            if !ejecting {
                // The packet will occupy the VC buffer at the downstream
                // end of *this* link.
                let occ = vc_occ[o * num_vcs + vc as usize];
                if (occ + flits) as usize > cfg.vc_buffer_flits {
                    // No credits downstream: park.  Every event that can
                    // change this outcome re-arms the link — a credit
                    // release on it (the departing resident's `in_link`
                    // wake below), a candidate add/renumber, a new source
                    // head, or the next in-flight arrival via the ring.
                    clear_bit(&mut active, o as u32);
                    if next_ready != u64::MAX {
                        let t = next_ready.min(cycle + ring_mask);
                        ring[(t & ring_mask) as usize].push(o as u32);
                    }
                    continue;
                }
            }
            // Commit the move.
            committed = true;
            if from_source {
                source_queues[from].pop_front();
                let next_head = match source_queues[from].front() {
                    Some(p) => net.first_hop(p.flow),
                    None => NONE,
                };
                head_out[from] = next_head;
                if next_head != NONE && next_head != o as u32 {
                    wake(&lstate, &mut active, &mut ring, ring_mask, cycle, next_head);
                }
            } else {
                remove_resident(
                    &mut residents,
                    &mut cands,
                    &lstate,
                    &mut active,
                    &mut ring,
                    ring_mask,
                    cycle,
                    from,
                    best_slot,
                );
                let occ = &mut vc_occ[in_link as usize * num_vcs + vc as usize];
                let occ_old = *occ;
                *occ = occ.saturating_sub(flits);
                // Credit release: the upstream link may be parked on this
                // VC's buffer being full.  A packet of `w <= max_flits`
                // flits was blocked iff `occ_old + w > capacity`, so when
                // even the largest class fit there was nothing to unblock
                // and the wake can be skipped exactly.
                if occ_old as usize + max_flits as usize > cfg.vc_buffer_flits {
                    wake(&lstate, &mut active, &mut ring, ring_mask, cycle, in_link);
                }
                let rb = &mut routers[from].buf;
                rb.accrue(cycle, measure_start, measure_end);
                rb.buffered = rb.buffered.saturating_sub(flits as u64);
            }
            // The link now serializes this packet: park it, re-arming at
            // `free_at` only when it could have work then (a remaining
            // candidate or a source head) — if it goes dark, every later
            // add/head/renumber wake is busy-aware and re-arms it itself.
            let serialization = flits as u64;
            let free_at = cycle + serialization;
            clear_bit(&mut active, o as u32);
            if !cands[o].is_empty() || head_out[from] == o as u32 {
                ring[((free_at.min(cycle + ring_mask)) & ring_mask) as usize].push(o as u32);
            }
            {
                let s = &mut lstate[o];
                s.free_at = free_at;
                if in_window {
                    s.flits += serialization;
                    s.busy_cycles += serialization.min(measure_end - cycle);
                }
            }
            if in_window {
                let rs = &mut routers[from];
                rs.flits += serialization;
                if rs.last_active != cycle {
                    rs.last_active = cycle;
                    rs.active_cycles += 1;
                }
            }
            let arrival = cycle + cfg.link_latency + serialization + cfg.router_latency;
            if ejecting {
                // Ejected at the destination.
                let latency = (arrival - created) as f64;
                let measured = created >= measure_start && created < measure_end;
                if measured {
                    stats.record(latency);
                    packets_ejected += 1;
                    inj.outstanding = inj.outstanding.saturating_sub(1);
                    if num_epochs > 0 {
                        let e = ((created - measure_start) / epoch_len) as usize;
                        epoch_stats[e].record(latency);
                        epoch_ejected[e] += 1;
                    }
                }
                if arrival >= measure_start && arrival < measure_end {
                    flits_ejected_in_window += flits as u64;
                    if num_epochs > 0 {
                        epoch_accepted[((arrival - measure_start) / epoch_len) as usize] +=
                            flits as u64;
                    }
                }
            } else {
                vc_occ[o * num_vcs + vc as usize] += flits;
                let rb = &mut routers[to].buf;
                rb.accrue(cycle, measure_start, measure_end);
                rb.buffered += flits as u64;
                let next_idx = next_idx + 1;
                add_resident(
                    &mut residents,
                    &mut cands,
                    &lstate,
                    &mut ring,
                    ring_mask,
                    cycle,
                    to,
                    FlatResident {
                        created,
                        ready_at: arrival,
                        flits,
                        vc,
                        flow,
                        next_idx,
                        in_link: o as u32,
                        out_link: net.hops[off + next_idx as usize],
                        cand_pos: NONE,
                    },
                );
            }
        }

        // 3. Quiescence skip.  Once generation has stopped, a cycle with
        //    zero commits means the state can only change again at the
        //    next ready/free threshold: jump there (or stop when there is
        //    none — only permanently stalled packets remain, and the
        //    report no longer changes).  Exact, because between thresholds
        //    the eligibility sets the allocation pass reads are constant.
        if cycle >= measure_end && !committed {
            let mut next_event = u64::MAX;
            for slab in &residents {
                for r in slab {
                    if r.out_link != NONE && r.ready_at > cycle {
                        next_event = next_event.min(r.ready_at);
                    }
                }
            }
            let mut scan = 0usize;
            while scan < l {
                let word = active[scan / 64] & (!0u64 << (scan % 64));
                if word == 0 {
                    scan = (scan / 64 + 1) * 64;
                    continue;
                }
                let o = (scan / 64) * 64 + word.trailing_zeros() as usize;
                scan = o + 1;
                if lstate[o].free_at > cycle {
                    next_event = next_event.min(lstate[o].free_at);
                }
            }
            // Parked links re-arm through the calendar: every pending wake
            // is a threshold too.  All entries are strictly in the future
            // and less than one ring length away, so bucket index recovers
            // the absolute cycle exactly.
            for (b, bucket) in ring.iter().enumerate() {
                if !bucket.is_empty() {
                    let delta = (b as u64).wrapping_sub(cycle + 1) & ring_mask;
                    next_event = next_event.min(cycle + 1 + delta);
                }
            }
            if next_event == u64::MAX {
                break;
            }
            cycle = next_event;
        } else {
            cycle += 1;
        }
    }

    // Settle the lazily integrated buffer occupancies up to the end of the
    // measurement window.
    for rs in routers.iter_mut() {
        rs.buf.accrue(measure_end, measure_start, measure_end);
    }
    // Close any epochs still open (the loop ends without revisiting its
    // head when the drain window is empty or quiescence cuts it short).
    while epoch_idx < num_epochs {
        epoch_buffered[epoch_idx] = routers.iter().map(|r| r.buf.buffered).sum();
        epoch_idx += 1;
    }
    let epochs = (num_epochs > 0).then(|| EpochSeries {
        epoch_cycles: epoch_len,
        samples: (0..num_epochs)
            .map(|e| {
                let start_cycle = measure_start + e as u64 * epoch_len;
                EpochSample {
                    start_cycle,
                    end_cycle: (start_cycle + epoch_len).min(measure_end),
                    injected_flits: epoch_injected[e],
                    accepted_flits: epoch_accepted[e],
                    packets_ejected: epoch_ejected[e],
                    mean_latency_cycles: epoch_stats[e].mean(),
                    p95_latency_cycles: epoch_stats[e].percentile(0.95),
                    buffered_flits: epoch_buffered[e],
                }
            })
            .collect(),
    });
    let measure_cycles = cfg.measure_cycles as f64;
    let injected = inj.window_flits as f64 / (n as f64 * measure_cycles);
    let accepted = flits_ejected_in_window as f64 / (n as f64 * measure_cycles);
    let activity = ActivityProfile {
        measured_cycles: cfg.measure_cycles,
        links: links
            .iter()
            .enumerate()
            .map(|(idx, &(from, to))| LinkActivity {
                from,
                to,
                flits: lstate[idx].flits,
                busy_cycles: lstate[idx].busy_cycles,
            })
            .collect(),
        routers: (0..n)
            .map(|r| RouterActivity {
                router: r,
                flits_forwarded: routers[r].flits,
                active_cycles: routers[r].active_cycles,
                buffer_flit_cycles: routers[r].buf.flit_cycles,
            })
            .collect(),
    };
    let avg_latency_cycles = stats.mean();
    SimReport {
        offered_flits_per_node_cycle,
        injected_flits_per_node_cycle: injected,
        accepted_flits_per_node_cycle: accepted,
        avg_latency_cycles,
        p95_latency_cycles: stats.percentile(0.95),
        p99_latency_cycles: stats.percentile(0.99),
        avg_latency_ns: cfg.cycles_to_ns(avg_latency_cycles),
        packets_injected: inj.packets,
        packets_ejected,
        packets_unfinished: inj.outstanding,
        avg_link_utilization: activity.avg_link_utilization(),
        activity,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_route::paths::all_shortest_paths;
    use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    #[test]
    fn compiled_tables_cover_every_routed_flow() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let net = CompiledNetwork::compile(&mesh, &table, Some(&alloc), &SimConfig::quick());
        assert_eq!(net.num_links(), mesh.num_directed_links());
        assert_eq!(net.num_routed_flows(), table.num_routed_flows());
        // Total hop entries = sum of per-flow hop counts.
        let expected_hops: usize = table.flows().map(|(_, p)| p.len() - 1).sum();
        assert_eq!(net.num_hops(), expected_hops);
        // Every compiled hop refers to a real link, in path order.
        for (flow, path) in table.flows() {
            let fi = flow.src * 20 + flow.dst;
            let off = net.path_offsets[fi] as usize;
            let end = net.path_offsets[fi + 1] as usize;
            assert_eq!(end - off, path.len() - 1);
            for (k, pair) in path.windows(2).enumerate() {
                let link = net.hops[off + k];
                assert_ne!(link, NONE);
                assert_eq!(net.links[link as usize], (pair[0], pair[1]));
            }
            assert_eq!(net.first_hop(fi as u32), net.hops[off]);
        }
    }

    #[test]
    fn unrouted_flows_compile_to_empty_ranges() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let table = RoutingTable::new(20, "empty");
        let net = CompiledNetwork::compile(&mesh, &table, None, &SimConfig::quick());
        assert_eq!(net.num_routed_flows(), 0);
        assert_eq!(net.num_hops(), 0);
        assert_eq!(net.first_hop(0), NONE);
    }

    #[test]
    fn flat_run_matches_reference_on_a_mesh() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        for load in [0.02, 0.3, 0.9] {
            assert_eq!(sim.run(load), sim.run_reference(load), "load {load}");
        }
    }

    #[test]
    fn epoch_probe_is_off_by_default_and_reference_never_fills_it() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        assert!(sim.run(0.2).epochs.is_none());
        assert!(sim.run_reference(0.2).epochs.is_none());
    }

    #[test]
    fn epoch_probe_slices_the_window_and_sums_to_the_report() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let config = SimConfig {
            epoch_cycles: 400, // 1500-cycle window -> 4 epochs, last short
            ..SimConfig::quick()
        };
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(config.clone())
            .build();
        let report = sim.run(0.2);
        let series = report.epochs.as_ref().expect("probe enabled");
        assert_eq!(series.epoch_cycles, 400);
        assert_eq!(series.samples.len(), 4);
        let measure_start = config.warmup_cycles;
        let measure_end = config.warmup_cycles + config.measure_cycles;
        for (e, s) in series.samples.iter().enumerate() {
            assert_eq!(s.start_cycle, measure_start + e as u64 * 400);
            assert_eq!(s.end_cycle, (s.start_cycle + 400).min(measure_end));
            assert!(s.mean_latency_cycles >= 0.0);
            assert!(s.p95_latency_cycles >= s.mean_latency_cycles * 0.5);
        }
        // Per-epoch counters partition the window totals exactly.
        let n = 20.0;
        let measure = config.measure_cycles as f64;
        let injected: u64 = series.samples.iter().map(|s| s.injected_flits).sum();
        let accepted: u64 = series.samples.iter().map(|s| s.accepted_flits).sum();
        let ejected: u64 = series.samples.iter().map(|s| s.packets_ejected).sum();
        assert!(
            (injected as f64 / (n * measure) - report.injected_flits_per_node_cycle).abs() < 1e-12
        );
        assert!(
            (accepted as f64 / (n * measure) - report.accepted_flits_per_node_cycle).abs() < 1e-12
        );
        assert_eq!(ejected, report.packets_ejected);
        assert!(injected > 0, "a 20% load must inject in every window");
        // At a sustainable load with nonzero latency some buffers are
        // occupied at least at one epoch boundary.
        assert!(series.samples.iter().any(|s| s.accepted_flits > 0));
    }

    #[test]
    fn epoch_probe_does_not_perturb_the_simulation() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let off = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let on = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig {
                epoch_cycles: 250,
                ..SimConfig::quick()
            })
            .build();
        for load in [0.05, 0.3, 0.9] {
            let mut probed = on.run(load);
            assert!(probed.epochs.take().is_some());
            assert_eq!(probed, off.run(load), "load {load}");
        }
    }

    #[test]
    fn quiescence_skip_preserves_full_drain_semantics() {
        // A drain window far longer than the traffic needs: the skip path
        // must cut straight to the end without changing any statistic.
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).unwrap();
        let config = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 500,
            drain_cycles: 100_000,
            ..SimConfig::default()
        };
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(config)
            .build();
        let report = sim.run(0.1);
        assert_eq!(report, sim.run_reference(0.1));
        assert_eq!(report.packets_unfinished, 0);
    }
}
