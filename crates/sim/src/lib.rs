//! # netsmith-sim
//!
//! A cycle-driven network-on-interposer simulator used to evaluate
//! topologies and routing schemes the way the paper evaluates them with
//! gem5/HeteroGarnet (Garnet standalone synthetic traffic): average packet
//! latency as the injection rate sweeps up to and past saturation.
//!
//! ## Fidelity and substitutions
//!
//! The paper simulates flit-level wormhole routers.  This crate models the
//! network at packet granularity with **virtual cut-through** switching:
//!
//! * every directed link carries one flit per cycle, so a packet of `F`
//!   flits occupies a link for `F` cycles (serialization latency is
//!   modelled exactly);
//! * routers have per-virtual-channel input buffers with finite capacity
//!   and credit-style backpressure (a packet only advances when the
//!   downstream VC has room for all of its flits);
//! * each packet travels on the virtual channel its flow was assigned by
//!   the deadlock-free VC allocation of `netsmith-route`, so the per-VC
//!   channel dependency graphs stay acyclic and the simulated network is
//!   deadlock-free by construction, exactly like the escape-VC discipline
//!   the paper uses;
//! * per-output-port arbitration is oldest-first (approximating the
//!   iterative separable allocators of Garnet).
//!
//! Virtual cut-through reaches slightly *higher* saturation than an
//! input-queued wormhole router (the paper itself notes the gap between
//! analytical expectation and the measured input-queued throughput, citing
//! Karol et al.); since every topology/routing pair is simulated with the
//! same switching model, the comparisons the paper makes — who saturates
//! first, by roughly what factor — are preserved.

pub mod activity;
pub mod compile;
pub mod config;
pub mod inject;
pub mod network;
pub mod stats;
pub mod sweep;

pub use activity::{ActivityProfile, LinkActivity, RouterActivity};
pub use compile::CompiledNetwork;
pub use config::{InjectionMode, PacketClass, ParallelMode, SimConfig};
pub use inject::{InjectionEvent, InjectionSchedule};
pub use netsmith_trace::{Trace, TraceCursor};
pub use network::{
    point_seed, splitmix64, EpochSample, EpochSeries, NetworkSim, NetworkSimBuilder, SimReport,
};
pub use stats::LatencyStats;
pub use sweep::{saturation_throughput, LatencyCurve, Sweep, SweepOptions, SweepPoint};
