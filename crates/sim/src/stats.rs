//! Latency and throughput statistics.

use serde::{Deserialize, Serialize};

/// Exact 1-cycle bins covering latencies 0..=1024.
const LINEAR_BINS: usize = 1025;
/// Geometric tail resolution: bins per factor-of-two of latency.
const BINS_PER_OCTAVE: usize = 8;
/// Octaves covered by the tail (up to 1024 * 2^20 ≈ 10^9 cycles; anything
/// beyond clamps into the last bin).
const TAIL_OCTAVES: usize = 20;
const TAIL_BINS: usize = BINS_PER_OCTAVE * TAIL_OCTAVES;

/// Aggregated latency statistics over measured packets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    total: f64,
    max: f64,
    /// Latency histogram used for percentile estimates without storing
    /// every sample: 1-cycle bins up to 1024 cycles, then geometric bins
    /// ([`BINS_PER_OCTAVE`] per factor of two) so congested runs report
    /// real tail percentiles instead of clamping to 1024.
    histogram: Vec<u64>,
}

/// `Default` must produce the same ready-to-record state as [`new`]: the
/// derived implementation used to yield an *empty* histogram, so
/// `LatencyStats::default().record(x)` underflowed on
/// `self.histogram.len() - 1`.
///
/// [`new`]: LatencyStats::new
impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

impl LatencyStats {
    /// Empty statistics.
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            total: 0.0,
            max: 0.0,
            histogram: vec![0; LINEAR_BINS + TAIL_BINS],
        }
    }

    /// The histogram bin for a latency: exact below the linear range,
    /// geometric above it.
    fn bin_of(latency_cycles: f64) -> usize {
        let rounded = latency_cycles.round().max(0.0);
        if rounded < LINEAR_BINS as f64 {
            rounded as usize
        } else {
            let octaves = (rounded / (LINEAR_BINS - 1) as f64).log2();
            let tail = (octaves * BINS_PER_OCTAVE as f64) as usize;
            LINEAR_BINS + tail.min(TAIL_BINS - 1)
        }
    }

    /// The representative latency of a bin: the bin itself in the linear
    /// range, the log-space midpoint of a geometric tail bin.
    fn bin_value(bin: usize) -> f64 {
        if bin < LINEAR_BINS {
            bin as f64
        } else {
            let tail = (bin - LINEAR_BINS) as f64;
            (LINEAR_BINS - 1) as f64 * ((tail + 0.5) / BINS_PER_OCTAVE as f64).exp2()
        }
    }

    /// Record one packet latency (in cycles).
    pub fn record(&mut self, latency_cycles: f64) {
        self.count += 1;
        self.total += latency_cycles;
        if latency_cycles > self.max {
            self.max = latency_cycles;
        }
        self.histogram[Self::bin_of(latency_cycles)] += 1;
    }

    /// Number of recorded packets.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Maximum observed latency in cycles.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate percentile (e.g. 0.99) from the histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (bin, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                // A geometric bin's midpoint can overshoot the largest
                // sample actually seen; the true value never can.
                return Self::bin_value(bin).min(self.max);
            }
        }
        self.max
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        if self.histogram.len() < other.histogram.len() {
            self.histogram.resize(other.histogram.len(), 0);
        }
        for (bin, &c) in other.histogram.iter().enumerate() {
            self.histogram[bin] += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_max_and_count() {
        let mut s = LatencyStats::new();
        for l in [10.0, 20.0, 30.0] {
            s.record(l);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-9);
        assert_eq!(s.max(), 30.0);
    }

    #[test]
    fn percentile_is_monotone() {
        let mut s = LatencyStats::new();
        for i in 0..100 {
            s.record(i as f64);
        }
        assert!(s.percentile(0.5) <= s.percentile(0.9));
        assert!(s.percentile(0.9) <= s.percentile(1.0) + 1e-9);
        assert!(s.percentile(0.99) >= 90.0);
    }

    #[test]
    fn merge_combines_counts_and_means() {
        let mut a = LatencyStats::new();
        a.record(10.0);
        let mut b = LatencyStats::new();
        b.record(30.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.99), 0.0);
    }

    #[test]
    fn tail_percentiles_are_not_clamped_to_1024() {
        // Regression: with 1-cycle bins ending at 1024, every latency
        // above the range fell into the last bin and p95/p99 reported
        // exactly 1024 on congested runs.
        let mut s = LatencyStats::new();
        for i in 0..100 {
            s.record(2_000.0 + 40.0 * i as f64); // 2000..=5960
        }
        let p50 = s.percentile(0.5);
        let p95 = s.percentile(0.95);
        let p99 = s.percentile(0.99);
        assert!(p50 > 1024.0, "p50 clamped: {p50}");
        assert!(p95 > 1024.0, "p95 clamped: {p95}");
        // Geometric bins are ~9% wide; allow that much error around the
        // exact sample percentiles.
        assert!((p50 - 3_980.0).abs() / 3_980.0 < 0.10, "p50 = {p50}");
        assert!((p95 - 5_760.0).abs() / 5_760.0 < 0.10, "p95 = {p95}");
        assert!(p95 <= p99 && p99 <= s.max() + 1e-9);
    }

    #[test]
    fn extreme_latencies_clamp_into_the_last_bin() {
        let mut s = LatencyStats::new();
        s.record(1e18);
        s.record(5.0);
        assert_eq!(s.count(), 2);
        // The sample lands in the last geometric bin (~10^9 cycles): the
        // estimate keeps its order of magnitude floor instead of clamping
        // to 1024, and never exceeds the observed max.
        let p = s.percentile(1.0);
        assert!(p >= 1e8 && p <= s.max(), "p100 = {p}");
    }

    #[test]
    fn linear_range_percentiles_stay_exact() {
        let mut s = LatencyStats::new();
        for i in 0..=1000 {
            s.record(i as f64);
        }
        assert_eq!(s.percentile(0.95), 950.0);
        assert_eq!(s.percentile(0.99), 990.0);
    }

    #[test]
    fn merge_combines_tail_histograms() {
        let mut a = LatencyStats::new();
        a.record(4_000.0);
        let mut b = LatencyStats::new();
        b.record(4_000.0);
        b.record(8_000.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let p = a.percentile(0.5);
        assert!((p - 4_000.0).abs() / 4_000.0 < 0.10, "median = {p}");
    }

    #[test]
    fn default_can_record_without_panicking() {
        // Regression: the derived Default produced an empty histogram and
        // `record` underflowed on `histogram.len() - 1`.
        let mut s = LatencyStats::default();
        s.record(12.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s, {
            let mut n = LatencyStats::new();
            n.record(12.0);
            n
        });
    }
}
