//! Latency and throughput statistics.

use serde::{Deserialize, Serialize};

/// Aggregated latency statistics over measured packets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    total: f64,
    max: f64,
    /// Latency histogram with 1-cycle bins up to 1024, used for percentile
    /// estimates without storing every sample.
    histogram: Vec<u64>,
}

/// `Default` must produce the same ready-to-record state as [`new`]: the
/// derived implementation used to yield an *empty* histogram, so
/// `LatencyStats::default().record(x)` underflowed on
/// `self.histogram.len() - 1`.
///
/// [`new`]: LatencyStats::new
impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

impl LatencyStats {
    /// Empty statistics.
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            total: 0.0,
            max: 0.0,
            histogram: vec![0; 1025],
        }
    }

    /// Record one packet latency (in cycles).
    pub fn record(&mut self, latency_cycles: f64) {
        self.count += 1;
        self.total += latency_cycles;
        if latency_cycles > self.max {
            self.max = latency_cycles;
        }
        let bin = (latency_cycles.round() as usize).min(self.histogram.len() - 1);
        self.histogram[bin] += 1;
    }

    /// Number of recorded packets.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Maximum observed latency in cycles.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate percentile (e.g. 0.99) from the histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (bin, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bin as f64;
            }
        }
        self.max
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        if self.histogram.len() < other.histogram.len() {
            self.histogram.resize(other.histogram.len(), 0);
        }
        for (bin, &c) in other.histogram.iter().enumerate() {
            self.histogram[bin] += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_max_and_count() {
        let mut s = LatencyStats::new();
        for l in [10.0, 20.0, 30.0] {
            s.record(l);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-9);
        assert_eq!(s.max(), 30.0);
    }

    #[test]
    fn percentile_is_monotone() {
        let mut s = LatencyStats::new();
        for i in 0..100 {
            s.record(i as f64);
        }
        assert!(s.percentile(0.5) <= s.percentile(0.9));
        assert!(s.percentile(0.9) <= s.percentile(1.0) + 1e-9);
        assert!(s.percentile(0.99) >= 90.0);
    }

    #[test]
    fn merge_combines_counts_and_means() {
        let mut a = LatencyStats::new();
        a.record(10.0);
        let mut b = LatencyStats::new();
        b.record(30.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.99), 0.0);
    }

    #[test]
    fn default_can_record_without_panicking() {
        // Regression: the derived Default produced an empty histogram and
        // `record` underflowed on `histogram.len() - 1`.
        let mut s = LatencyStats::default();
        s.record(12.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s, {
            let mut n = LatencyStats::new();
            n.record(12.0);
            n
        });
    }
}
