//! Per-link and per-router activity accounting.
//!
//! The paper's power analysis (Figure 9) feeds DSENT a single network-wide
//! activity factor.  That scalar hides exactly the information an
//! energy-proportional fabric needs: *which* links are idle enough to
//! power-gate and *which* routers see sustained buffer pressure.  The
//! simulator therefore records, over the measurement window, a full
//! [`ActivityProfile`]: flit counts and busy cycles for every directed
//! link, plus forwarded-flit counts, active cycles and average buffer
//! occupancy for every router.  Energy policies (`netsmith-energy`) and
//! the measured power model (`netsmith-power`) consume this profile
//! instead of a hand-picked utilization guess.

use netsmith_topo::RouterId;
use serde::{Deserialize, Serialize};

/// Measured activity of one directed link over the measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkActivity {
    /// Source router of the directed link.
    pub from: RouterId,
    /// Destination router of the directed link.
    pub to: RouterId,
    /// Flits that started traversing the link during the window.
    pub flits: u64,
    /// Cycles within the window the link spent serializing flits.
    pub busy_cycles: u64,
}

impl LinkActivity {
    /// Fraction of window cycles the link was busy (0 when the window is
    /// empty).
    pub fn utilization(&self, measured_cycles: u64) -> f64 {
        if measured_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / measured_cycles as f64
        }
    }
}

/// Measured activity of one router over the measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterActivity {
    /// Router id.
    pub router: RouterId,
    /// Flits this router forwarded onto any outgoing link (ejection
    /// included) during the window.
    pub flits_forwarded: u64,
    /// Cycles within the window in which the router forwarded at least one
    /// packet (crossbar active).
    pub active_cycles: u64,
    /// Sum over window cycles of flits resident in this router's input
    /// buffers (flit-cycles); divide by the window length for the average
    /// occupancy.
    pub buffer_flit_cycles: u64,
}

impl RouterActivity {
    /// Mean buffered flits per cycle over the window.
    pub fn avg_buffered_flits(&self, measured_cycles: u64) -> f64 {
        if measured_cycles == 0 {
            0.0
        } else {
            self.buffer_flit_cycles as f64 / measured_cycles as f64
        }
    }
}

/// Complete per-link / per-router activity record of one simulation run,
/// measured over the measurement window only (warm-up and drain excluded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityProfile {
    /// Length of the measurement window in cycles.
    pub measured_cycles: u64,
    /// One entry per directed link of the simulated topology, in
    /// `Topology::links()` iteration order.
    pub links: Vec<LinkActivity>,
    /// One entry per router, indexed by router id.
    pub routers: Vec<RouterActivity>,
}

impl ActivityProfile {
    /// Empty profile for a network with no links or routers.
    pub fn empty() -> Self {
        ActivityProfile {
            measured_cycles: 0,
            links: Vec::new(),
            routers: Vec::new(),
        }
    }

    /// Mean link utilization across all directed links — the measured
    /// replacement for the scalar activity factor of the static power
    /// model.
    pub fn avg_link_utilization(&self) -> f64 {
        if self.links.is_empty() || self.measured_cycles == 0 {
            return 0.0;
        }
        let busy: u64 = self.links.iter().map(|l| l.busy_cycles).sum();
        busy as f64 / (self.links.len() as f64 * self.measured_cycles as f64)
    }

    /// Utilization of a specific directed link, when present.
    pub fn link_utilization(&self, from: RouterId, to: RouterId) -> Option<f64> {
        self.links
            .iter()
            .find(|l| l.from == from && l.to == to)
            .map(|l| l.utilization(self.measured_cycles))
    }

    /// Total flit-traversals across all links during the window.
    pub fn total_link_flits(&self) -> u64 {
        self.links.iter().map(|l| l.flits).sum()
    }

    /// Network-wide flit-traversals per cycle (all links summed).
    pub fn flits_per_cycle(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.total_link_flits() as f64 / self.measured_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ActivityProfile {
        ActivityProfile {
            measured_cycles: 100,
            links: vec![
                LinkActivity {
                    from: 0,
                    to: 1,
                    flits: 50,
                    busy_cycles: 50,
                },
                LinkActivity {
                    from: 1,
                    to: 0,
                    flits: 10,
                    busy_cycles: 10,
                },
            ],
            routers: vec![
                RouterActivity {
                    router: 0,
                    flits_forwarded: 50,
                    active_cycles: 40,
                    buffer_flit_cycles: 200,
                },
                RouterActivity {
                    router: 1,
                    flits_forwarded: 10,
                    active_cycles: 10,
                    buffer_flit_cycles: 0,
                },
            ],
        }
    }

    #[test]
    fn utilization_is_busy_over_window() {
        let p = profile();
        assert!((p.avg_link_utilization() - 0.3).abs() < 1e-12);
        assert_eq!(p.link_utilization(0, 1), Some(0.5));
        assert_eq!(p.link_utilization(1, 0), Some(0.1));
        assert_eq!(p.link_utilization(0, 5), None);
    }

    #[test]
    fn totals_aggregate_links() {
        let p = profile();
        assert_eq!(p.total_link_flits(), 60);
        assert!((p.flits_per_cycle() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn router_occupancy_averages_over_window() {
        let p = profile();
        assert!((p.routers[0].avg_buffered_flits(p.measured_cycles) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = ActivityProfile::empty();
        assert_eq!(p.avg_link_utilization(), 0.0);
        assert_eq!(p.flits_per_cycle(), 0.0);
    }
}
