//! Simulator configuration.

use netsmith_topo::LinkClass;
use serde::{Deserialize, Serialize};

/// Packet classes used by the synthetic evaluation: 8-byte control packets
/// and 72-byte data packets, injected with equal likelihood (paper
/// Section IV), on an 8-byte link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketClass {
    Control,
    Data,
}

/// How Bernoulli traffic is sampled (trace replay ignores this — replay
/// draws no RNG either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InjectionMode {
    /// Precomputed per-source next-injection schedules: geometric
    /// inter-arrival gaps are skip-sampled from independent per-source
    /// streams (see [`crate::inject::InjectionSchedule`]), so a cycle with
    /// no arrivals draws **zero** RNG and the engine can jump idle
    /// stretches entirely.  Statistically the same Bernoulli process as
    /// [`InjectionMode::LegacyCoins`], but a different draw sequence, so
    /// per-sample values differ between the two modes.  Both engines
    /// consume the identical schedule and stay bit-identical to each
    /// other.
    #[default]
    Schedule,
    /// The pre-rework draw order: one shared RNG stream, one coin per
    /// alive source per cycle, in ascending source order.  Kept as an
    /// explicit compatibility mode so runs recorded against the original
    /// sequence stay reproducible.
    LegacyCoins,
}

/// Whether one simulation may shard its per-cycle link arbitration across
/// the shared worker pool.  Results are bit-identical in every mode and
/// for every worker count — the parallel phase only *precomputes*
/// arbitration decisions that the sequential commit pass re-validates —
/// so this is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ParallelMode {
    /// Engage for 48-router-and-larger networks when the pool has at
    /// least two workers; smaller networks stay sequential (the per-cycle
    /// hand-off would dominate their tiny arbitration cost).
    #[default]
    Auto,
    /// Never engage.
    Off,
    /// Engage regardless of network size or pool width (the equivalence
    /// tests use this to exercise the parallel path on small networks).
    Force,
}

/// Simulator parameters (defaults follow Table IV and Section IV of the
/// paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Link width in bytes (8B in the paper).
    pub link_width_bytes: usize,
    /// Control packet size in bytes (8B).
    pub control_bytes: usize,
    /// Data packet size in bytes (72B).
    pub data_bytes: usize,
    /// Probability that an injected packet is a data packet (0.5 for the
    /// coherence-style synthetic traffic of Figure 6a).
    pub data_fraction: f64,
    /// Router pipeline latency in cycles (2 in Table IV).
    pub router_latency: u64,
    /// Link traversal latency in cycles (1).
    pub link_latency: u64,
    /// Total number of virtual channels (6 for synthetic evaluation).
    pub num_vcs: usize,
    /// Per-VC input buffer capacity in flits.
    pub vc_buffer_flits: usize,
    /// Cycles of warm-up before statistics are collected.
    pub warmup_cycles: u64,
    /// Cycles of measurement.
    pub measure_cycles: u64,
    /// Cycles of drain after measurement (packets injected during the
    /// measurement window are tracked to completion or until the drain
    /// budget expires).
    pub drain_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// NoI clock in GHz (3.6 / 3.0 / 2.7 for small / medium / large).
    pub clock_ghz: f64,
    /// Epoch probe interval in cycles: when non-zero, the compiled engine
    /// slices the measurement window into epochs of this length and
    /// reports a per-epoch time-series (throughput, latency, buffer
    /// occupancy) in [`SimReport::epochs`].  Zero (the default) disables
    /// the probe; results are unaffected either way.
    ///
    /// [`SimReport::epochs`]: crate::SimReport::epochs
    pub epoch_cycles: u64,
    /// How synthetic Bernoulli traffic is sampled (see [`InjectionMode`]).
    pub injection: InjectionMode,
    /// Whether one run may shard link arbitration across the shared worker
    /// pool (see [`ParallelMode`]).
    pub parallel: ParallelMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_width_bytes: 8,
            control_bytes: 8,
            data_bytes: 72,
            data_fraction: 0.5,
            router_latency: 2,
            link_latency: 1,
            num_vcs: 6,
            vc_buffer_flits: 16,
            warmup_cycles: 2_000,
            measure_cycles: 10_000,
            drain_cycles: 4_000,
            seed: 0xBEEF,
            clock_ghz: 3.0,
            epoch_cycles: 0,
            injection: InjectionMode::default(),
            parallel: ParallelMode::default(),
        }
    }
}

impl SimConfig {
    /// A reduced-cycle configuration for unit tests.
    pub fn quick() -> Self {
        SimConfig {
            warmup_cycles: 300,
            measure_cycles: 1_500,
            drain_cycles: 600,
            ..Default::default()
        }
    }

    /// Configuration whose clock matches a link-length class (the paper
    /// clocks small/medium/large NoIs at 3.6/3.0/2.7 GHz).
    pub fn for_class(class: LinkClass) -> Self {
        SimConfig {
            clock_ghz: class.clock_ghz(),
            ..Default::default()
        }
    }

    /// Number of flits in a packet of the given class.
    pub fn flits(&self, class: PacketClass) -> usize {
        let bytes = match class {
            PacketClass::Control => self.control_bytes,
            PacketClass::Data => self.data_bytes,
        };
        bytes.div_ceil(self.link_width_bytes).max(1)
    }

    /// Average packet size in flits under the configured class mix.
    pub fn average_flits(&self) -> f64 {
        self.data_fraction * self.flits(PacketClass::Data) as f64
            + (1.0 - self.data_fraction) * self.flits(PacketClass::Control) as f64
    }

    /// Convert a latency in NoI cycles to nanoseconds using the configured
    /// clock.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.clock_ghz
    }

    /// Convert an injection rate in flits/node/cycle to packets/node/ns.
    pub fn flit_rate_to_packets_per_ns(&self, flits_per_cycle: f64) -> f64 {
        flits_per_cycle / self.average_flits() * self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_sizes_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.flits(PacketClass::Control), 1);
        assert_eq!(c.flits(PacketClass::Data), 9);
        assert_eq!(c.average_flits(), 5.0);
    }

    #[test]
    fn class_clocks_follow_kite() {
        assert_eq!(SimConfig::for_class(LinkClass::Small).clock_ghz, 3.6);
        assert_eq!(SimConfig::for_class(LinkClass::Medium).clock_ghz, 3.0);
        assert_eq!(SimConfig::for_class(LinkClass::Large).clock_ghz, 2.7);
    }

    #[test]
    fn unit_conversions() {
        let c = SimConfig::for_class(LinkClass::Medium);
        assert!((c.cycles_to_ns(30.0) - 10.0).abs() < 1e-9);
        // 1 flit/cycle with 5-flit average packets at 3 GHz = 0.6 packets/ns.
        assert!((c.flit_rate_to_packets_per_ns(1.0) - 0.6).abs() < 1e-9);
    }
}
