//! Batched Bernoulli injection: precomputed per-source next-injection
//! schedules.
//!
//! The legacy traffic generator ([`InjectionMode::LegacyCoins`]) draws one
//! coin per alive source per cycle — `n` RNG draws per simulated cycle
//! whether or not anything injects, which on small networks is the single
//! largest cost in the hot loop (trace replay, which draws no RNG, runs
//! several times faster on the same configurations).
//!
//! [`InjectionSchedule`] removes the per-cycle draws by *skip sampling*
//! the same Bernoulli process: for a per-cycle injection probability `p`,
//! the gap between successive injections of one source is geometric, so
//! each source draws one uniform variate per *arrival* and jumps straight
//! to its next injection cycle:
//!
//! ```text
//! gap = 1 + floor(ln(u) / ln(1 - p)),   u uniform in (0, 1]
//! ```
//!
//! `u` is built from the top 53 bits of one `u64` draw (`(bits >> 11) + 1`
//! scaled by `2^-53`), the same exact-integer construction the engines use
//! for their coin thresholds, so the sampler is deterministic and
//! platform-independent.  Each source owns an independent stream seeded
//! from the run's [`point_seed`] material mixed with the source id;
//! destination and packet-class draws come from the owning source's
//! stream, in arrival order.  A cycle with no arrivals due draws **zero**
//! RNG, and [`InjectionSchedule::next_due`] tells the compiled engine how
//! far it may jump over provably idle cycles.
//!
//! Both simulation engines construct the schedule identically from
//! `(config, offered load, alive mask)` and consume it through the same
//! [`InjectionSchedule::pop_due`] drain, so schedule-mode runs are
//! bit-identical between the compiled and reference engines — the
//! `compiled_equivalence` proptests assert exactly that.
//!
//! [`InjectionMode::LegacyCoins`]: crate::InjectionMode::LegacyCoins
//! [`point_seed`]: crate::point_seed

use crate::config::{PacketClass, SimConfig};
use crate::network::{point_seed, splitmix64};
use netsmith_topo::{Layout, TrafficPattern};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// 2^53: the resolution of `gen_bool`'s unit-interval draw, shared with
/// the engines' exact-integer coin thresholds.
const F53: f64 = 9_007_199_254_740_992.0;

/// One resolved injection: the packet `src` puts into its source queue at
/// the cycle [`InjectionSchedule::pop_due`] returned it for.  Destination
/// and class are already drawn and validated (dead or unroutable
/// destinations were consumed and dropped inside the schedule, exactly as
/// the per-cycle coin loop drops them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionEvent {
    /// Injecting (source) router.
    pub src: u32,
    /// Destination router (alive, distinct from `src`).
    pub dst: u32,
    /// Packet size drawn from the configured class mix.
    pub flits: u32,
}

/// Upper bound on the arming calendar's bucket count.  Gaps that overshoot
/// the calendar park at its far edge and re-park forward on each lap —
/// one bit-op per lap per source, so even near-zero loads stay cheap.
const CAL_MAX_BUCKETS: usize = 4096;

/// Precomputed per-source injection schedule over a measurement horizon.
/// See the [module docs](self) for the sampling construction.
///
/// Arming uses a calendar ring of per-cycle source bitmaps rather than a
/// heap: arming is one bit-OR, draining a cycle pops set bits in ascending
/// source order (the legacy coin loop's iteration order), and a cycle with
/// nothing armed costs one word load.  A source whose exact due cycle
/// overshoots the calendar parks at the far edge and re-parks forward when
/// the drain reaches it (`due` keeps the exact cycle).
#[derive(Debug, Clone)]
pub struct InjectionSchedule {
    /// One independent stream per router (dead routers keep a never-used
    /// stream so the vector stays indexable by source id).
    streams: Vec<SmallRng>,
    /// Exact next injection cycle per source (`u64::MAX` = retired).
    due: Vec<u64>,
    /// Calendar ring: `cal_mask + 1` buckets of `words` source-bitmap
    /// words each.
    cal: Vec<u64>,
    cal_mask: u64,
    words: usize,
    /// Next bucket cycle `pop_due` drains (all earlier buckets are empty).
    pos: u64,
    /// Drain cursor within bucket `pos`: current word and its remaining
    /// bits.
    cur_w: usize,
    cur_bits: u64,
    /// `ln(1 - p)` (strictly negative for `0 < p < 1`); the deep-tail
    /// fallback of the gap sampler.
    ln_one_minus_p: f64,
    /// Exact-integer gap thresholds: `gap_thr[j] = floor((1-p)^(j+1) *
    /// 2^53)`, strictly decreasing.  A gap draw `B` (53 uniform bits)
    /// resolves to `1 + #{j : B < gap_thr[j]}` by binary search — no
    /// logarithm on the common path; only a draw below the last
    /// threshold (probability `(1-p)^64` at most) falls back to the log
    /// formula.
    gap_thr: Vec<u64>,
    /// `p >= 1`: every gap is 1 and the gap sampler draws no RNG.
    every_cycle: bool,
    /// One past the last cycle that may inject (`warmup + measure`);
    /// arrivals scheduled at or past it are dropped, never re-armed.
    horizon: u64,
    /// Exact-integer class coin threshold: `ceil(data_fraction * 2^53)`.
    data_thr: u64,
    data_flits: u32,
    ctrl_flits: u32,
}

impl InjectionSchedule {
    /// Build the schedule both engines share for one run: seed material
    /// from `point_seed(cfg.seed, offered)`, per-cycle probability
    /// `offered / average_flits` (clamped to `[0, 1]`), horizon at the end
    /// of the measurement window.
    pub fn for_run(cfg: &SimConfig, offered_flits_per_node_cycle: f64, alive: &[bool]) -> Self {
        let base = point_seed(cfg.seed, offered_flits_per_node_cycle);
        let p = (offered_flits_per_node_cycle / cfg.average_flits()).clamp(0.0, 1.0);
        let horizon = cfg.warmup_cycles + cfg.measure_cycles;
        let buckets = (horizon as usize + 1)
            .next_power_of_two()
            .clamp(64, CAL_MAX_BUCKETS);
        let words = alive.len().div_ceil(64);
        let mut sched = InjectionSchedule {
            streams: (0..alive.len())
                .map(|src| SmallRng::seed_from_u64(splitmix64(base ^ splitmix64(src as u64))))
                .collect(),
            due: vec![u64::MAX; alive.len()],
            cal: vec![0; buckets * words],
            cal_mask: buckets as u64 - 1,
            words,
            pos: 0,
            cur_w: 0,
            cur_bits: 0,
            ln_one_minus_p: (-p).ln_1p(),
            gap_thr: {
                let mut thr = Vec::new();
                if p > 0.0 && p < 1.0 {
                    let mut qj = 1.0f64;
                    for _ in 0..64 {
                        qj *= 1.0 - p;
                        let t = (qj * F53) as u64;
                        if t == 0 {
                            break;
                        }
                        thr.push(t);
                    }
                }
                thr
            },
            every_cycle: p >= 1.0,
            horizon,
            data_thr: (cfg.data_fraction * F53).ceil() as u64,
            data_flits: cfg.flits(PacketClass::Data) as u32,
            ctrl_flits: cfg.flits(PacketClass::Control) as u32,
        };
        if p > 0.0 {
            for (src, &alive) in alive.iter().enumerate() {
                if !alive {
                    continue;
                }
                // The first gap counts from "one cycle before the run", so
                // a gap of 1 lands on cycle 0 — a source is allowed to
                // inject on the very first cycle.
                let first = sched.gap(src) - 1;
                if first < sched.horizon {
                    sched.due[src] = first;
                    sched.arm(first.min(sched.cal_mask), src as u32);
                }
            }
            // Stage bucket 0's first word so the drain cursor invariant
            // (`cur_bits` holds word `cur_w` of bucket `pos`) holds.
            sched.cur_bits = std::mem::take(&mut sched.cal[0]);
        }
        sched
    }

    /// Set source `src`'s bit in the calendar bucket for cycle `t`.
    #[inline]
    fn arm(&mut self, t: u64, src: u32) {
        let idx = (t & self.cal_mask) as usize * self.words + (src / 64) as usize;
        self.cal[idx] |= 1u64 << (src % 64);
    }

    /// Draw one geometric inter-arrival gap (in cycles, `>= 1`) from
    /// `src`'s stream: binary search of the 53-bit draw against the
    /// exact-integer threshold table, falling back to the log formula
    /// only below the last threshold (where a tiny `u` saturates toward
    /// `u64::MAX`, which the horizon check then drops).
    #[inline]
    fn gap(&mut self, src: usize) -> u64 {
        if self.every_cycle {
            return 1;
        }
        let bits = self.streams[src].next_u64() >> 11;
        let hits = self.gap_thr.partition_point(|&t| bits < t);
        if hits < self.gap_thr.len() {
            return 1 + hits as u64;
        }
        let u = (bits + 1) as f64 * (1.0 / F53);
        1 + (u.ln() / self.ln_one_minus_p) as u64
    }

    /// A lower bound on the earliest scheduled injection cycle, if any —
    /// always strictly greater than the last fully drained cycle, which is
    /// what lets the compiled engine jump idle stretches without missing
    /// an arrival.  (A bound rather than the exact cycle: a far-future
    /// arrival parks at the calendar edge, and a visit that finds only
    /// such parks emits nothing and re-arms them forward — the engine
    /// treats any returned cycle as "worth visiting", so an early visit is
    /// harmless.)
    #[inline]
    pub fn next_due(&self) -> Option<u64> {
        if self.cur_bits != 0 {
            return Some(self.pos);
        }
        // Finish bucket `pos`'s remaining words, then whole buckets, one
        // lap at most (every armed entry lives within one calendar lap of
        // the drain cursor).
        for w in self.cur_w + 1..self.words {
            if self.cal[(self.pos & self.cal_mask) as usize * self.words + w] != 0 {
                return Some(self.pos);
            }
        }
        for delta in 1..=self.cal_mask {
            let t = self.pos + delta;
            let idx = (t & self.cal_mask) as usize * self.words;
            if self.cal[idx..idx + self.words].iter().any(|&w| w != 0) {
                return Some(t);
            }
        }
        None
    }

    /// Advance the drain cursor to the next non-empty calendar word at or
    /// before `cycle`.  Returns `false` once every bucket through `cycle`
    /// is drained.
    #[inline]
    fn refill(&mut self, cycle: u64) -> bool {
        debug_assert_eq!(self.cur_bits, 0);
        loop {
            self.cur_w += 1;
            if self.cur_w >= self.words {
                if self.pos >= cycle {
                    // Keep the cursor on the drained bucket's last word so
                    // the invariant "everything before (pos, cur_w) is
                    // drained" still holds for the next call.
                    self.cur_w = self.words - 1;
                    return false;
                }
                self.pos += 1;
                self.cur_w = 0;
            }
            let idx = (self.pos & self.cal_mask) as usize * self.words + self.cur_w;
            self.cur_bits = std::mem::take(&mut self.cal[idx]);
            if self.cur_bits != 0 {
                return true;
            }
        }
    }

    /// Pop the next injection due at or before `cycle`, drawing its
    /// destination and class from the source's stream and re-arming the
    /// source at its next gap.  Arrivals whose destination is unroutable
    /// (`sample_destination` returns `None`) or dead are consumed and
    /// skipped — the source still advances — mirroring the coin loop's
    /// drop semantics.  Returns `None` once nothing further is due this
    /// cycle.
    ///
    /// Events come out in `(due cycle, source)` order provided `cycle`
    /// never exceeds an armed arrival's due cycle between calls — which
    /// holds for both engines: the reference loop drains every cycle, and
    /// the compiled loop's idle jumps are bounded by [`next_due`].
    ///
    /// [`next_due`]: InjectionSchedule::next_due
    pub fn pop_due(
        &mut self,
        cycle: u64,
        pattern: &TrafficPattern,
        layout: &Layout,
        alive: &[bool],
    ) -> Option<InjectionEvent> {
        loop {
            if self.cur_bits == 0 && !self.refill(cycle) {
                return None;
            }
            let b = self.cur_bits.trailing_zeros();
            self.cur_bits &= self.cur_bits - 1;
            let s = self.cur_w * 64 + b as usize;
            let d = self.due[s];
            if d > cycle {
                // Parked short of its real due cycle by the calendar edge:
                // push it one more lap forward.
                let t = d.min(self.pos + self.cal_mask);
                self.arm(t, s as u32);
                continue;
            }
            let event = match pattern.sample_destination(layout, s, &mut self.streams[s]) {
                Some(dst) if alive[dst] => {
                    // Class coin only after the destination is validated —
                    // the same draw structure as the legacy loop.
                    let flits = if (self.streams[s].next_u64() >> 11) < self.data_thr {
                        self.data_flits
                    } else {
                        self.ctrl_flits
                    };
                    Some(InjectionEvent {
                        src: s as u32,
                        dst: dst as u32,
                        flits,
                    })
                }
                _ => None,
            };
            let next = d.saturating_add(self.gap(s));
            if next < self.horizon {
                self.due[s] = next;
                self.arm(next.min(self.pos + self.cal_mask), s as u32);
            } else {
                self.due[s] = u64::MAX;
            }
            if let Some(ev) = event {
                return Some(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sched: &mut InjectionSchedule, horizon: u64, n: usize) -> Vec<(u64, InjectionEvent)> {
        let layout = Layout::interposer_grid(2, n / 2, 4);
        let pattern = TrafficPattern::UniformRandom;
        let alive = vec![true; n];
        let mut events = Vec::new();
        let mut cycle = 0;
        while cycle < horizon {
            while let Some(ev) = sched.pop_due(cycle, &pattern, &layout, &alive) {
                events.push((cycle, ev));
            }
            cycle += 1;
        }
        events
    }

    #[test]
    fn schedule_is_deterministic_and_horizon_bounded() {
        let cfg = SimConfig::quick();
        let alive = vec![true; 8];
        let horizon = cfg.warmup_cycles + cfg.measure_cycles;
        let a = drain(
            &mut InjectionSchedule::for_run(&cfg, 0.3, &alive),
            horizon + 500,
            8,
        );
        let b = drain(
            &mut InjectionSchedule::for_run(&cfg, 0.3, &alive),
            horizon + 500,
            8,
        );
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|&(cycle, _)| cycle < horizon));
        // Same-cycle arrivals pop in ascending source order.
        for w in a.windows(2) {
            let ((c0, e0), (c1, e1)) = (w[0], w[1]);
            assert!(c0 < c1 || (c0 == c1 && e0.src < e1.src));
        }
    }

    #[test]
    fn arrival_rate_tracks_the_bernoulli_probability() {
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 200_000,
            ..SimConfig::default()
        };
        let alive = vec![true; 4];
        // offered 0.5 flits/node/cycle over 5-flit average packets:
        // p = 0.1 per source per cycle.
        let events = drain(
            &mut InjectionSchedule::for_run(&cfg, 0.5, &alive),
            200_000,
            4,
        );
        let rate = events.len() as f64 / (4.0 * 200_000.0);
        assert!((rate - 0.1).abs() < 0.005, "arrival rate {rate} vs p = 0.1");
        // The class mix tracks data_fraction = 0.5 (9-flit data packets).
        let data = events.iter().filter(|(_, e)| e.flits == 9).count() as f64;
        let frac = data / events.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "data fraction {frac}");
    }

    #[test]
    fn zero_load_never_injects_and_full_load_fires_every_cycle() {
        let cfg = SimConfig::quick();
        let alive = vec![true; 4];
        let mut zero = InjectionSchedule::for_run(&cfg, 0.0, &alive);
        assert_eq!(zero.next_due(), None);
        assert!(drain(&mut zero, 3_000, 4).is_empty());

        // Offered >= average_flits clamps p to 1: every alive source
        // injects every cycle up to the horizon.
        let horizon = cfg.warmup_cycles + cfg.measure_cycles;
        let every = drain(
            &mut InjectionSchedule::for_run(&cfg, 5.0, &alive),
            horizon,
            4,
        );
        assert_eq!(every.len(), 4 * horizon as usize);
    }

    #[test]
    fn dead_sources_and_destinations_are_masked() {
        let cfg = SimConfig::quick();
        let alive = vec![true, false, true, true];
        let layout = Layout::interposer_grid(2, 2, 4);
        let pattern = TrafficPattern::UniformRandom;
        let mut sched = InjectionSchedule::for_run(&cfg, 0.8, &alive);
        for cycle in 0..2_000 {
            while let Some(ev) = sched.pop_due(cycle, &pattern, &layout, &alive) {
                assert_ne!(ev.src, 1, "dead source injected");
                assert_ne!(ev.dst, 1, "dead destination sampled");
                assert_ne!(ev.src, ev.dst);
            }
        }
    }

    #[test]
    fn next_due_is_strictly_ahead_after_a_drain() {
        let cfg = SimConfig::quick();
        let alive = vec![true; 6];
        let layout = Layout::interposer_grid(2, 3, 4);
        let pattern = TrafficPattern::UniformRandom;
        let mut sched = InjectionSchedule::for_run(&cfg, 0.1, &alive);
        let mut cycle = 0;
        while let Some(due) = sched.next_due() {
            assert!(due >= cycle, "next_due went backwards");
            cycle = due;
            let mut got = 0;
            while sched.pop_due(cycle, &pattern, &layout, &alive).is_some() {
                got += 1;
            }
            // A due cycle either yields events or was consumed by masked
            // destinations; either way the schedule advanced past it.
            let _ = got;
            if let Some(next) = sched.next_due() {
                assert!(next > cycle);
            }
            cycle += 1;
        }
    }
}
