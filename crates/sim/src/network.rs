//! The cycle-driven network simulator core.
//!
//! [`NetworkSim::run`] executes on a precompiled flat representation of
//! the network (see [`crate::compile`]) that turns per-packet routing
//! table lookups into dense array walks.  The original scan-based
//! implementation is kept as [`NetworkSim::run_reference`]; both paths
//! draw the same RNG stream and produce bit-identical [`SimReport`]s,
//! which the equivalence proptests assert.

use crate::activity::{ActivityProfile, LinkActivity, RouterActivity};
use crate::compile::CompiledNetwork;
use crate::config::{InjectionMode, PacketClass, SimConfig};
use crate::inject::InjectionSchedule;
use crate::stats::LatencyStats;
use netsmith_pool::WorkerPool;
use netsmith_route::Flow;
use netsmith_route::{RoutingTable, VcAllocation};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{RouterId, Topology};
use netsmith_trace::{Trace, TraceCursor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// A packet in flight (reference path only; the compiled path keeps flat
/// per-field arrays instead).
#[derive(Debug, Clone)]
struct Packet {
    src: RouterId,
    dst: RouterId,
    flits: usize,
    vc: usize,
    created: u64,
}

/// A packet resident in a router's input buffer, ready to arbitrate for its
/// next output from `ready_at` onwards.  `in_link` identifies the incoming
/// channel whose VC buffer the packet occupies (None for freshly injected
/// packets, which sit in the source queue instead).
#[derive(Debug, Clone)]
struct Resident {
    packet: Packet,
    ready_at: u64,
    in_link: usize,
}

/// The SplitMix64 output finalizer: a cheap, full-avalanche bijection on
/// `u64` (Steele, Lea & Flood, OOPSLA 2014).  Used to derive per-load-point
/// RNG seeds that differ in every bit even for adjacent load values.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seed for one simulation run: the configured base seed mixed with the
/// *exact bits* of the offered load.
///
/// The previous scheme (`seed ^ (rate * 1e6) as u64`) truncated the rate to
/// an integer microflit count, so load points closer than 1e-6 collided and
/// nearby points differed in only a couple of low bits.  Hashing
/// `f64::to_bits` through [`splitmix64`] makes every distinct load value an
/// independent stream.  Changing the derivation intentionally changes every
/// simulated sample; the pinned values live in `seed_mixing` tests.
#[inline]
pub fn point_seed(seed: u64, offered_flits_per_node_cycle: f64) -> u64 {
    splitmix64(seed ^ splitmix64(offered_flits_per_node_cycle.to_bits()))
}

/// One epoch of the compiled engine's epoch probe: the measurement window
/// sliced at [`SimConfig::epoch_cycles`] intervals.  Attribution follows
/// the window counters: injections count in the epoch of their injection
/// cycle, accepted flits in the epoch their packet arrives, and latency
/// samples in the epoch the packet was *created* (the "requests issued in
/// this interval" view a serving-style consumer wants).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSample {
    /// First cycle of the epoch (absolute, includes warmup offset).
    pub start_cycle: u64,
    /// One past the last cycle of the epoch (clamped to the window end).
    pub end_cycle: u64,
    /// Flits injected during the epoch.
    pub injected_flits: u64,
    /// Flits whose packets were ejected during the epoch.
    pub accepted_flits: u64,
    /// Measured packets (created in this epoch) ejected so far.
    pub packets_ejected: u64,
    /// Mean latency of measured packets created in this epoch (cycles).
    pub mean_latency_cycles: f64,
    /// 95th-percentile latency of measured packets created in this epoch.
    pub p95_latency_cycles: f64,
    /// Total flits resident in VC buffers when the epoch ended (an
    /// instantaneous occupancy snapshot, not a window average).
    pub buffered_flits: u64,
}

/// The epoch probe's time-series over the measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSeries {
    /// The configured epoch length in cycles.
    pub epoch_cycles: u64,
    pub samples: Vec<EpochSample>,
}

/// Final report of a single simulation run at a fixed injection rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Offered load in flits per node per cycle.  Under Bernoulli
    /// injection this is the generator's target probability; under trace
    /// replay it is the *requested* replay rate the trace's issue cycles
    /// were stretched to (see [`NetworkSimBuilder::trace`]), which the
    /// discrete stretched schedule then tracks modulo rounding.
    pub offered_flits_per_node_cycle: f64,
    /// Traffic actually generated during the measurement window, in flits
    /// per node per cycle.  Tracks the offered load (modulo sampling
    /// noise) on a healthy network, but drops below it when routers are
    /// failed — their traffic disappears with them — or when a pattern
    /// sends some sources nothing.  Under trace replay this is exact, not
    /// sampled: the window's scheduled trace flits, minus any masked out
    /// by failed endpoints.
    pub injected_flits_per_node_cycle: f64,
    /// Accepted throughput in flits per node per cycle (measured window).
    pub accepted_flits_per_node_cycle: f64,
    /// Average end-to-end packet latency in cycles (source-queue time
    /// included).
    pub avg_latency_cycles: f64,
    /// 95th-percentile latency in cycles.
    pub p95_latency_cycles: f64,
    /// 99th-percentile latency in cycles.
    pub p99_latency_cycles: f64,
    /// Average packet latency in nanoseconds at the configured clock.
    pub avg_latency_ns: f64,
    /// Packets injected during the measurement window.
    pub packets_injected: u64,
    /// Packets ejected during the measurement window.
    pub packets_ejected: u64,
    /// Measured packets still stuck in the network or source queues when
    /// the drain budget expired.
    pub packets_unfinished: u64,
    /// Average link utilization (flit-cycles used / link-cycles available)
    /// over the measurement window.
    pub avg_link_utilization: f64,
    /// Per-directed-link and per-router activity measured over the window;
    /// the input to measured power reports and energy policies.
    pub activity: ActivityProfile,
    /// Per-epoch time-series over the measurement window, present when
    /// [`SimConfig::epoch_cycles`] is non-zero and the compiled engine ran
    /// (the reference engine never fills it).
    pub epochs: Option<EpochSeries>,
    /// The full latency histogram the percentiles above were computed
    /// from.  Carrying the histogram lets a caller aggregate many runs
    /// (e.g. the epochs of a serving horizon) with
    /// [`LatencyStats::merge`] and extract *exact* horizon-level
    /// p95/p99 instead of a mean of per-run percentiles.
    pub latency: LatencyStats,
}

impl SimReport {
    /// A crude but robust saturation indicator: the network is saturated
    /// when it visibly fails to deliver the offered load or latency has
    /// exploded relative to an uncongested network.  A small absolute slack
    /// keeps low-load points (where the finite measurement window introduces
    /// sampling noise) from being misclassified.
    ///
    /// The delivery reference is the *injected* rate where that is lower
    /// than the offered one: traffic that was never generated — because a
    /// failed router's endpoints are masked out, or a permutation pattern
    /// leaves some sources silent — is not a delivery shortfall.
    pub fn is_saturated(&self, zero_load_latency_cycles: f64) -> bool {
        let reference = self
            .offered_flits_per_node_cycle
            .min(self.injected_flits_per_node_cycle);
        let delivery_shortfall = self.accepted_flits_per_node_cycle < 0.85 * reference - 0.01;
        let latency_blowup = self.avg_latency_cycles > 6.0 * zero_load_latency_cycles.max(1.0);
        delivery_shortfall || latency_blowup
    }

    /// Fraction of the traffic actually generated in the window that was
    /// also delivered in it: `accepted / injected` (1.0 when nothing was
    /// injected).  The denominator is the *injected* rate, not the offered
    /// one, so the measure has the same meaning under Bernoulli injection
    /// and under trace replay: traffic never generated (failed endpoints,
    /// silent sources, a trace quieter than requested) does not count as
    /// loss.  Sits near 1 below saturation and degrades past it.
    pub fn delivered_fraction(&self) -> f64 {
        if self.injected_flits_per_node_cycle <= 0.0 {
            1.0
        } else {
            (self.accepted_flits_per_node_cycle / self.injected_flits_per_node_cycle).min(1.0)
        }
    }
}

/// Typed builder for [`NetworkSim`] (replaces the old positional
/// `NetworkSim::new(topo, table, vcs, pattern, config)` constructor).
///
/// ```ignore
/// let sim = NetworkSim::builder(&topo, &table)
///     .vcs(&alloc)
///     .pattern(TrafficPattern::UniformRandom)
///     .config(SimConfig::quick())
///     .build();
/// ```
pub struct NetworkSimBuilder<'a> {
    topo: &'a Topology,
    table: &'a RoutingTable,
    vcs: Option<&'a VcAllocation>,
    pattern: TrafficPattern,
    trace: Option<Arc<Trace>>,
    config: SimConfig,
    failed: Vec<RouterId>,
    pool: Option<&'a WorkerPool>,
}

impl<'a> NetworkSimBuilder<'a> {
    /// Use a deadlock-free VC allocation.  Without one every packet uses
    /// VC 0 — acceptable for acyclic routing functions only.
    pub fn vcs(mut self, vcs: &'a VcAllocation) -> Self {
        self.vcs = Some(vcs);
        self
    }

    /// Synthetic traffic pattern (default: [`TrafficPattern::UniformRandom`]).
    /// Ignored when a [`NetworkSimBuilder::trace`] is set.
    pub fn pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Replay a recorded message trace instead of Bernoulli injection.
    ///
    /// The run's offered load selects the replay rate: the trace's issue
    /// cycles are stretched by `native_load / offered_load` (preserving
    /// burst structure rather than resampling it) and the schedule wraps
    /// past the trace horizon, so any measurement window length works.
    /// Trace injection draws no RNG: a run is fully determined by
    /// `(trace, offered load)`, and the reference and compiled engines
    /// stay bit-identical under replay.  The trace must be defined over
    /// exactly this topology's router count, and messages wider than
    /// [`SimConfig::vc_buffer_flits`](crate::SimConfig) can never obtain
    /// credits at an intermediate hop — keep trace message sizes within
    /// the VC buffer depth (the bundled generators do).
    pub fn trace(mut self, trace: Arc<Trace>) -> Self {
        assert_eq!(
            trace.header.routers as usize,
            self.topo.num_routers(),
            "trace router count must match the topology"
        );
        self.trace = Some(trace);
        self
    }

    /// Simulator configuration (default: [`SimConfig::default`]).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Mark routers as failed up front; equivalent to
    /// [`NetworkSim::with_failed_routers`] after `build()`.
    pub fn failed_routers(mut self, failed: &[RouterId]) -> Self {
        self.failed.extend_from_slice(failed);
        self
    }

    /// Worker pool for intra-run parallelism (see
    /// [`ParallelMode`](crate::ParallelMode)).  Without one, runs that
    /// engage parallel arbitration borrow [`WorkerPool::global`]; an
    /// explicit pool pins the worker count, which the equivalence tests
    /// use to prove results are bit-identical across counts.
    pub fn pool(mut self, pool: &'a WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Build the simulator.  The flat network representation is compiled
    /// lazily on the first `run` call; use [`NetworkSimBuilder::compile`]
    /// to pay that cost eagerly instead.
    pub fn build(self) -> NetworkSim<'a> {
        assert_eq!(self.table.num_routers(), self.topo.num_routers());
        let mut alive = vec![true; self.topo.num_routers()];
        for &r in &self.failed {
            alive[r] = false;
        }
        NetworkSim {
            topo: self.topo,
            table: self.table,
            vcs: self.vcs,
            pattern: self.pattern,
            trace: self.trace,
            config: self.config,
            alive,
            pool: self.pool,
            compiled: OnceLock::new(),
        }
    }

    /// Build the simulator and compile the flat network representation
    /// immediately (useful when the construction cost should not be
    /// attributed to the first of many `run` calls in a sweep).
    pub fn compile(self) -> NetworkSim<'a> {
        let sim = self.build();
        let _ = sim.compiled();
        sim
    }
}

/// The simulator.
pub struct NetworkSim<'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) table: &'a RoutingTable,
    pub(crate) vcs: Option<&'a VcAllocation>,
    pub(crate) pattern: TrafficPattern,
    /// When set, traffic comes from replaying this trace instead of the
    /// Bernoulli generator over `pattern` (see [`NetworkSimBuilder::trace`]).
    pub(crate) trace: Option<Arc<Trace>>,
    pub(crate) config: SimConfig,
    /// Routers that inject and eject traffic.  Failed routers (cleared
    /// bits) neither source packets nor get sampled as destinations, which
    /// is how a workload runs on a degraded topology: the fault layer
    /// removes the dead router's links from the topology/routing, and this
    /// mask removes its traffic endpoints.
    pub(crate) alive: Vec<bool>,
    /// Optional worker pool for intra-run parallel arbitration (see
    /// [`NetworkSimBuilder::pool`]); `None` falls back to the global pool
    /// when a run engages parallelism.
    pub(crate) pool: Option<&'a WorkerPool>,
    /// Flat representation shared by every `run` call; compiled once per
    /// `(topology, table, vcs)` and reused across all load points of a
    /// sweep.  Independent of the `alive` mask, which only gates traffic
    /// generation.
    compiled: OnceLock<CompiledNetwork>,
}

impl<'a> NetworkSim<'a> {
    /// Start building a simulator for a topology and a routing table.
    pub fn builder(topo: &'a Topology, table: &'a RoutingTable) -> NetworkSimBuilder<'a> {
        NetworkSimBuilder {
            topo,
            table,
            vcs: None,
            pattern: TrafficPattern::UniformRandom,
            trace: None,
            config: SimConfig::default(),
            failed: Vec::new(),
            pool: None,
        }
    }

    /// Mark routers as failed: they stop injecting packets and traffic
    /// addressed to them is dropped at the source (the cores behind a dead
    /// router are offline, so their load disappears with them).  The caller
    /// supplies the degraded topology and a routing table covering the
    /// surviving pairs — typically from `netsmith-fault`'s repair policy.
    pub fn with_failed_routers(mut self, failed: &[RouterId]) -> Self {
        for &r in failed {
            self.alive[r] = false;
        }
        self
    }

    /// The simulator configuration (clock, packet mix, windows).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The compiled flat representation of `(topology, table, vcs)`,
    /// building it on first use.
    pub fn compiled(&self) -> &CompiledNetwork {
        self.compiled
            .get_or_init(|| CompiledNetwork::compile(self.topo, self.table, self.vcs, &self.config))
    }

    /// Zero-load latency estimate in cycles: average hops times the per-hop
    /// delay (router + link) plus average serialization.
    pub fn zero_load_latency_cycles(&self) -> f64 {
        let hops = self.table.average_hops();
        let per_hop = (self.config.router_latency + self.config.link_latency) as f64;
        hops * per_hop + self.config.average_flits()
    }

    /// Run the simulation at an offered load expressed in flits per node
    /// per cycle, on the compiled flat state machine.
    pub fn run(&self, offered_flits_per_node_cycle: f64) -> SimReport {
        crate::compile::run_flat(self, self.compiled(), offered_flits_per_node_cycle)
    }

    /// The pre-rework scan-based simulation loop.  Kept verbatim (modulo
    /// the [`point_seed`] derivation, which both paths share) as the
    /// executable specification the compiled path is tested against —
    /// see the `compiled_equivalence` proptests.  Prefer [`NetworkSim::run`].
    pub fn run_reference(&self, offered_flits_per_node_cycle: f64) -> SimReport {
        let cfg = &self.config;
        let n = self.topo.num_routers();
        let layout = self.topo.layout().clone();
        let mut rng = SmallRng::seed_from_u64(point_seed(cfg.seed, offered_flits_per_node_cycle));
        // Packet injection probability per node per cycle.
        let packets_per_cycle =
            (offered_flits_per_node_cycle / cfg.average_flits()).clamp(0.0, 1.0);
        // Trace replay schedule, when this run replays a trace instead of
        // drawing Bernoulli coins.
        let mut trace_cursor = self
            .trace
            .as_deref()
            .map(|t| TraceCursor::new(t, offered_flits_per_node_cycle));
        // Precomputed per-source injection schedule (the default
        // [`InjectionMode::Schedule`]).  Identical construction to the
        // compiled engine, so both drain the same event sequence.
        let mut schedule = (self.trace.is_none() && cfg.injection == InjectionMode::Schedule)
            .then(|| InjectionSchedule::for_run(cfg, offered_flits_per_node_cycle, &self.alive));

        let links: Vec<(RouterId, RouterId)> = self.topo.links().collect();
        let mut link_free_at: Vec<u64> = vec![0; links.len()];
        // Windowed activity accounting (measurement cycles only).
        let mut link_flits: Vec<u64> = vec![0; links.len()];
        let mut link_busy_cycles: Vec<u64> = vec![0; links.len()];
        let mut router_flits: Vec<u64> = vec![0; n];
        let mut router_active_cycles: Vec<u64> = vec![0; n];
        let mut router_last_active: Vec<u64> = vec![u64::MAX; n];
        let mut router_buffered_flits: Vec<u64> = vec![0; n];
        let mut router_buffer_flit_cycles: Vec<u64> = vec![0; n];

        // Per-incoming-channel, per-VC buffer occupancy in flits.  Buffers
        // are per channel (not per router) so the Dally & Seitz argument —
        // acyclic per-VC channel dependency graph implies deadlock freedom —
        // carries over to the simulated resource model.
        let mut vc_occupancy: Vec<Vec<usize>> = vec![vec![0; cfg.num_vcs]; links.len()];
        // Packets resident in router buffers.
        let mut residents: Vec<Vec<Resident>> = vec![Vec::new(); n];
        // Source (injection) queues.
        let mut source_queues: Vec<VecDeque<Packet>> = vec![VecDeque::new(); n];

        let total_cycles = cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles;
        let measure_start = cfg.warmup_cycles;
        let measure_end = cfg.warmup_cycles + cfg.measure_cycles;

        let mut stats = LatencyStats::new();
        let mut packets_injected = 0u64;
        let mut packets_ejected = 0u64;
        let mut flits_injected_in_window = 0u64;
        let mut flits_ejected_in_window = 0u64;
        let mut measured_outstanding: u64 = 0;

        for cycle in 0..total_cycles {
            let in_window = cycle >= measure_start && cycle < measure_end;
            // 0. Buffer-occupancy sampling for the router activity profile.
            if in_window {
                for (r, &buffered) in router_buffered_flits.iter().enumerate() {
                    router_buffer_flit_cycles[r] += buffered;
                }
            }
            // 1. Traffic generation (stops after the measurement window so
            //    the drain phase can empty the network).
            if cycle < measure_end {
                if let Some(cursor) = trace_cursor.as_mut() {
                    // Trace replay: drain every message due this cycle, in
                    // trace order.  Messages whose endpoints are masked out
                    // by failed routers are dropped at the source, exactly
                    // like the Bernoulli path's alive checks.
                    while let Some(m) = cursor.pop_due(cycle) {
                        let (src, dst) = (m.src as usize, m.dst as usize);
                        if !self.alive[src] || !self.alive[dst] {
                            continue;
                        }
                        let vc = self
                            .vcs
                            .and_then(|a| a.assignment.get(&Flow::new(src, dst)).copied())
                            .unwrap_or(0)
                            .min(cfg.num_vcs - 1);
                        let packet = Packet {
                            src,
                            dst,
                            flits: m.flits as usize,
                            vc,
                            created: cycle,
                        };
                        if cycle >= measure_start {
                            packets_injected += 1;
                            flits_injected_in_window += packet.flits as u64;
                            measured_outstanding += 1;
                        }
                        source_queues[src].push_back(packet);
                    }
                } else if let Some(sched) = schedule.as_mut() {
                    // Schedule mode: drain the precomputed arrivals due
                    // this cycle (destination and class already drawn and
                    // validated inside the schedule).
                    while let Some(ev) = sched.pop_due(cycle, &self.pattern, &layout, &self.alive) {
                        let (src, dst) = (ev.src as usize, ev.dst as usize);
                        let vc = self
                            .vcs
                            .and_then(|a| a.assignment.get(&Flow::new(src, dst)).copied())
                            .unwrap_or(0)
                            .min(cfg.num_vcs - 1);
                        let packet = Packet {
                            src,
                            dst,
                            flits: ev.flits as usize,
                            vc,
                            created: cycle,
                        };
                        if cycle >= measure_start {
                            packets_injected += 1;
                            flits_injected_in_window += packet.flits as u64;
                            measured_outstanding += 1;
                        }
                        source_queues[src].push_back(packet);
                    }
                } else {
                    for (src, queue) in source_queues.iter_mut().enumerate() {
                        if !self.alive[src] {
                            continue;
                        }
                        if rng.gen_bool(packets_per_cycle) {
                            if let Some(dst) =
                                self.pattern.sample_destination(&layout, src, &mut rng)
                            {
                                if !self.alive[dst] {
                                    continue;
                                }
                                let class = if rng.gen_bool(cfg.data_fraction) {
                                    PacketClass::Data
                                } else {
                                    PacketClass::Control
                                };
                                let vc = self
                                    .vcs
                                    .and_then(|a| a.assignment.get(&Flow::new(src, dst)).copied())
                                    .unwrap_or(0)
                                    .min(cfg.num_vcs - 1);
                                let packet = Packet {
                                    src,
                                    dst,
                                    flits: cfg.flits(class),
                                    vc,
                                    created: cycle,
                                };
                                if cycle >= measure_start && cycle < measure_end {
                                    packets_injected += 1;
                                    flits_injected_in_window += packet.flits as u64;
                                    measured_outstanding += 1;
                                }
                                queue.push_back(packet);
                            }
                        }
                    }
                }
            }

            // 2. Link/switch allocation: for every output link, pick the
            //    oldest eligible packet among the router's residents and the
            //    head of its source queue.
            for (idx, &(from, to)) in links.iter().enumerate() {
                if link_free_at[idx] > cycle {
                    continue;
                }
                // Candidate from the resident buffers.
                let mut best: Option<(u64, usize, bool)> = None; // (created, index, from_source)
                for (ri, r) in residents[from].iter().enumerate() {
                    if r.ready_at > cycle {
                        continue;
                    }
                    let next = self.table.next_hop(r.packet.src, r.packet.dst, from);
                    if next == Some(to)
                        && best.is_none_or(|(created, _, _)| r.packet.created < created)
                    {
                        best = Some((r.packet.created, ri, false));
                    }
                }
                // Candidate from the source queue head.
                if let Some(head) = source_queues[from].front() {
                    if head.src == from {
                        let next = self.table.next_hop(head.src, head.dst, from);
                        if next == Some(to)
                            && best.is_none_or(|(created, _, _)| head.created < created)
                        {
                            best = Some((head.created, 0, true));
                        }
                    }
                }
                let Some((_, ri, from_source)) = best else {
                    continue;
                };
                // Peek the packet to check downstream space.
                let packet = if from_source {
                    source_queues[from].front().unwrap().clone()
                } else {
                    residents[from][ri].packet.clone()
                };
                let ejecting = to == packet.dst;
                if !ejecting {
                    // The packet will occupy the VC buffer at the downstream
                    // end of *this* link.
                    let occ = vc_occupancy[idx][packet.vc];
                    if occ + packet.flits > cfg.vc_buffer_flits {
                        continue; // no credits downstream
                    }
                }
                // Commit the move.
                if from_source {
                    source_queues[from].pop_front();
                } else {
                    let freed = residents[from].swap_remove(ri);
                    vc_occupancy[freed.in_link][packet.vc] =
                        vc_occupancy[freed.in_link][packet.vc].saturating_sub(packet.flits);
                    router_buffered_flits[from] =
                        router_buffered_flits[from].saturating_sub(packet.flits as u64);
                }
                let serialization = packet.flits as u64;
                link_free_at[idx] = cycle + serialization;
                if in_window {
                    link_flits[idx] += serialization;
                    link_busy_cycles[idx] += serialization.min(measure_end - cycle);
                    router_flits[from] += serialization;
                    if router_last_active[from] != cycle {
                        router_last_active[from] = cycle;
                        router_active_cycles[from] += 1;
                    }
                }
                let arrival = cycle + cfg.link_latency + serialization + cfg.router_latency;
                if ejecting {
                    // Ejected at the destination.
                    let latency = (arrival - packet.created) as f64;
                    let measured = packet.created >= measure_start && packet.created < measure_end;
                    if measured {
                        stats.record(latency);
                        packets_ejected += 1;
                        measured_outstanding = measured_outstanding.saturating_sub(1);
                    }
                    if arrival >= measure_start && arrival < measure_end {
                        flits_ejected_in_window += packet.flits as u64;
                    }
                } else {
                    vc_occupancy[idx][packet.vc] += packet.flits;
                    router_buffered_flits[to] += packet.flits as u64;
                    residents[to].push(Resident {
                        packet,
                        ready_at: arrival,
                        in_link: idx,
                    });
                }
            }
        }

        let measure_cycles = cfg.measure_cycles as f64;
        let injected = flits_injected_in_window as f64 / (n as f64 * measure_cycles);
        let accepted = flits_ejected_in_window as f64 / (n as f64 * measure_cycles);
        let activity = ActivityProfile {
            measured_cycles: cfg.measure_cycles,
            links: links
                .iter()
                .enumerate()
                .map(|(idx, &(from, to))| LinkActivity {
                    from,
                    to,
                    flits: link_flits[idx],
                    busy_cycles: link_busy_cycles[idx],
                })
                .collect(),
            routers: (0..n)
                .map(|r| RouterActivity {
                    router: r,
                    flits_forwarded: router_flits[r],
                    active_cycles: router_active_cycles[r],
                    buffer_flit_cycles: router_buffer_flit_cycles[r],
                })
                .collect(),
        };
        let avg_latency_cycles = stats.mean();
        SimReport {
            offered_flits_per_node_cycle,
            injected_flits_per_node_cycle: injected,
            accepted_flits_per_node_cycle: accepted,
            avg_latency_cycles,
            p95_latency_cycles: stats.percentile(0.95),
            p99_latency_cycles: stats.percentile(0.99),
            avg_latency_ns: cfg.cycles_to_ns(avg_latency_cycles),
            packets_injected,
            packets_ejected,
            packets_unfinished: measured_outstanding,
            avg_link_utilization: activity.avg_link_utilization(),
            activity,
            epochs: None,
            latency: stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_route::paths::all_shortest_paths;
    use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    fn setup(topo: &Topology) -> (RoutingTable, VcAllocation) {
        let ps = all_shortest_paths(topo);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).expect("fits in 6 VCs");
        (table, alloc)
    }

    #[test]
    fn low_load_latency_is_near_zero_load_estimate() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let zero = sim.zero_load_latency_cycles();
        let report = sim.run(0.02);
        assert!(report.packets_ejected > 0);
        assert!(
            report.avg_latency_cycles < 2.5 * zero,
            "latency {} vs zero-load {zero}",
            report.avg_latency_cycles
        );
        assert!(!report.is_saturated(zero));
    }

    #[test]
    fn packets_are_conserved_at_low_load() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        let (table, alloc) = setup(&torus);
        let sim = NetworkSim::builder(&torus, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let report = sim.run(0.05);
        // At 5% load with a generous drain window every measured packet
        // must make it out.
        assert_eq!(
            report.packets_ejected + report.packets_unfinished,
            report.packets_injected
        );
        assert_eq!(report.packets_unfinished, 0, "packets stuck at low load");
    }

    #[test]
    fn high_load_saturates_and_throughput_plateaus() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let zero = sim.zero_load_latency_cycles();
        let light = sim.run(0.05);
        let heavy = sim.run(0.9);
        assert!(heavy.avg_latency_cycles > light.avg_latency_cycles);
        assert!(heavy.is_saturated(zero));
        // Accepted throughput can never exceed offered.
        assert!(heavy.accepted_flits_per_node_cycle <= heavy.offered_flits_per_node_cycle + 1e-9);
        assert!(heavy.accepted_flits_per_node_cycle < 0.9);
    }

    #[test]
    fn better_topologies_accept_more_traffic() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let torus = expert::folded_torus(&layout);
        let load = 0.6;
        let mut accepted = Vec::new();
        for topo in [&mesh, &torus] {
            let (table, alloc) = setup(topo);
            let sim = NetworkSim::builder(topo, &table)
                .vcs(&alloc)
                .config(SimConfig::quick())
                .build();
            accepted.push(sim.run(load).accepted_flits_per_node_cycle);
        }
        assert!(
            accepted[1] > accepted[0],
            "folded torus {} should out-deliver mesh {}",
            accepted[1],
            accepted[0]
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let a = sim.run(0.2);
        let b = sim.run(0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn eager_compile_matches_lazy() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let lazy = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let eager = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .compile();
        assert_eq!(lazy.run(0.2), eager.run(0.2));
    }

    #[test]
    fn activity_profile_is_consistent_with_the_report() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let report = sim.run(0.2);
        let activity = &report.activity;
        // One entry per directed link and per router.
        assert_eq!(activity.links.len(), mesh.num_directed_links());
        assert_eq!(activity.routers.len(), mesh.num_routers());
        // The scalar utilization is exactly the profile's average.
        assert!((report.avg_link_utilization - activity.avg_link_utilization()).abs() < 1e-12);
        assert!(activity.avg_link_utilization() > 0.0);
        // Busy cycles never exceed the window, flits move somewhere.
        for l in &activity.links {
            assert!(l.busy_cycles <= activity.measured_cycles);
            assert!(mesh.has_link(l.from, l.to));
        }
        assert!(activity.total_link_flits() > 0);
        // Every forwarded flit is attributed to the router driving the link.
        let link_total: u64 = activity.links.iter().map(|l| l.flits).sum();
        let router_total: u64 = activity.routers.iter().map(|r| r.flits_forwarded).sum();
        assert_eq!(link_total, router_total);
        // Under uniform traffic at a moderate load some router buffers
        // must have been occupied during the window.
        assert!(activity.routers.iter().any(|r| r.buffer_flit_cycles > 0));
    }

    #[test]
    fn failed_routers_neither_inject_nor_receive() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let dead = 7usize;
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build()
            .with_failed_routers(&[dead]);
        let report = sim.run(0.1);
        assert!(report.packets_ejected > 0, "survivors must keep talking");
        // Nothing is ever buffered *for* the dead router as a destination,
        // so the links into it carry only through-traffic the routing table
        // chose; with uniform traffic and a dead endpoint the router still
        // forwards, but it must never eject or source packets.  The
        // simulator models that by dropping its traffic at the sources, so
        // delivered throughput stays below the healthy run's.
        let healthy = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build()
            .run(0.1);
        assert!(report.packets_injected < healthy.packets_injected);
    }

    #[test]
    fn builder_failed_routers_match_with_failed_routers() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let via_builder = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .failed_routers(&[3, 12])
            .build()
            .run(0.1);
        let via_method = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build()
            .with_failed_routers(&[3, 12])
            .run(0.1);
        assert_eq!(via_builder, via_method);
    }

    #[test]
    fn masked_traffic_is_not_mistaken_for_saturation() {
        // Two dead routers structurally drop ~19% of uniform traffic at
        // the sources.  That missing traffic is not a delivery shortfall:
        // an uncongested degraded fabric must not read as saturated.
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build()
            .with_failed_routers(&[3, 12]);
        let zero = sim.zero_load_latency_cycles();
        let report = sim.run(0.25);
        assert!(
            report.injected_flits_per_node_cycle < 0.9 * report.offered_flits_per_node_cycle,
            "masking two routers must visibly reduce generated traffic"
        );
        assert!(
            !report.is_saturated(zero),
            "accepted {} vs offered {} misread as saturation",
            report.accepted_flits_per_node_cycle,
            report.offered_flits_per_node_cycle
        );
    }

    #[test]
    fn delivered_fraction_degrades_past_saturation() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        // Low load: essentially everything injected is delivered.
        let light = sim.run(0.05);
        assert!(
            light.delivered_fraction() > 0.95,
            "{}",
            light.delivered_fraction()
        );
        // Far past the mesh's saturation point the injected and accepted
        // rates diverge, and the fraction must expose that divergence.
        let heavy = sim.run(0.9);
        assert!(
            heavy.delivered_fraction() < 0.85,
            "delivered {} at 0.9 offered",
            heavy.delivered_fraction()
        );
        assert!(heavy.delivered_fraction() > 0.0);
        // The denominator is the injected rate: consistent by construction.
        assert!(
            (heavy.delivered_fraction()
                - (heavy.accepted_flits_per_node_cycle / heavy.injected_flits_per_node_cycle)
                    .min(1.0))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn p95_latency_sits_between_mean_and_p99() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(SimConfig::quick())
            .build();
        let report = sim.run(0.3);
        assert!(report.p95_latency_cycles > 0.0);
        assert!(report.p95_latency_cycles <= report.p99_latency_cycles);
        assert!(report.p95_latency_cycles >= report.avg_latency_cycles * 0.5);
    }

    #[test]
    fn trace_replay_reports_offered_and_injected_rates_consistently() {
        use netsmith_trace::TraceModel;
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, alloc) = setup(&mesh);
        // Horizon 100 divides the quick config's 300-cycle warmup and
        // 1500-cycle measurement window, so at the native rate the window
        // covers exactly 15 full replay waves.
        let trace = Arc::new(
            TraceModel::by_name("pointer-chase")
                .unwrap()
                .generate(20, 100, 5),
        );
        let requested = trace.offered_flits_per_node_cycle();
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .trace(Arc::clone(&trace))
            .config(SimConfig::quick())
            .build();
        let report = sim.run(requested);
        // Offered is the requested replay rate verbatim.
        assert_eq!(report.offered_flits_per_node_cycle, requested);
        // Injected is the exact scheduled trace traffic — over whole waves
        // it reproduces the native rate to the ulp, where a Bernoulli
        // sample of the same window would carry percent-level noise.
        assert!(
            (report.injected_flits_per_node_cycle - requested).abs() < 1e-12,
            "injected {} vs requested {requested}",
            report.injected_flits_per_node_cycle
        );
        assert!(report.packets_ejected > 0);
        // Replay draws no RNG: two runs are identical reports.
        assert_eq!(report, sim.run(requested));
    }

    #[test]
    #[should_panic(expected = "trace router count")]
    fn trace_with_wrong_router_count_is_rejected() {
        use netsmith_trace::TraceModel;
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, _alloc) = setup(&mesh);
        let trace = Arc::new(
            TraceModel::by_name("onoff-hotspot")
                .unwrap()
                .generate(16, 64, 1),
        );
        let _ = NetworkSim::builder(&mesh, &table).trace(trace);
    }

    #[test]
    fn shuffle_pattern_runs_end_to_end() {
        let layout = Layout::noi_4x5();
        let kite = expert::kite_medium(&layout);
        let (table, alloc) = setup(&kite);
        let sim = NetworkSim::builder(&kite, &table)
            .vcs(&alloc)
            .pattern(TrafficPattern::Shuffle)
            .config(SimConfig::quick())
            .build();
        let report = sim.run(0.1);
        assert!(report.packets_ejected > 0);
    }

    mod seed_mixing {
        use super::super::{point_seed, splitmix64};

        #[test]
        fn nearby_loads_no_longer_collide() {
            // The old `seed ^ (rate * 1e6) as u64` derivation truncated
            // both of these to the same integer (100000), so two distinct
            // load points shared one RNG stream.
            let a = point_seed(0xBEEF, 0.1);
            let b = point_seed(0xBEEF, 0.100_000_000_1);
            assert_ne!(a, b);
            // And neighbouring grid points must be independent streams,
            // not single-bit variations.
            let c = point_seed(0xBEEF, 0.15);
            assert_ne!(a, c);
            assert!((a ^ c).count_ones() > 8);
        }

        #[test]
        fn derivation_is_pinned() {
            // Changing point_seed changes every simulated sample in the
            // repo (figure CSV values, pinned sweep numbers).  These
            // constants pin the intentional PR-6 derivation; do not change
            // them casually.
            assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
            assert_eq!(point_seed(0xBEEF, 0.0), point_seed(0xBEEF, 0.0));
            let pinned: &[(u64, f64, u64)] = &[
                (0xBEEF, 0.1, PIN_BEEF_01),
                (0xBEEF, 0.3, PIN_BEEF_03),
                (20_240_402, 1.0, PIN_EXP_10),
            ];
            for &(seed, load, expect) in pinned {
                assert_eq!(
                    point_seed(seed, load),
                    expect,
                    "point_seed({seed:#x}, {load})"
                );
            }
        }

        // Pinned values for the intentional seed-derivation change.
        const PIN_BEEF_01: u64 = 0xC54D_9356_9504_1A71;
        const PIN_BEEF_03: u64 = 0xC099_7E23_8257_CE06;
        const PIN_EXP_10: u64 = 0x72B4_20EE_1595_9D91;
    }
}
