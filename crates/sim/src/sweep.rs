//! Injection-rate sweeps and saturation-throughput extraction.
//!
//! The paper's Figures 6, 10 and 11 plot average packet latency against the
//! achieved throughput while sweeping the offered injection rate of
//! synthetic traffic.  [`Sweep`] reproduces exactly that curve for one
//! topology + routing + VC allocation, and [`saturation_throughput`]
//! extracts the saturation point (the highest load the network still
//! delivers without the latency blowing up).
//!
//! Load points are independent simulations, so a sweep submits them as one
//! batch to the process-wide [`WorkerPool`]; the per-point results are
//! deterministic regardless of threading because every run seeds its RNG
//! from the offered load (see [`crate::network::point_seed`]).

use crate::config::SimConfig;
use crate::network::{NetworkSim, SimReport};
use netsmith_pool::WorkerPool;
use netsmith_route::{RoutingTable, VcAllocation};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::Topology;
use serde::{Deserialize, Serialize};

/// One point of a latency/throughput curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load (flits/node/cycle).
    pub offered: f64,
    /// Accepted throughput (flits/node/cycle).
    pub accepted: f64,
    /// Accepted throughput in packets/node/ns at the configured clock.
    pub accepted_packets_per_ns: f64,
    /// Average latency in cycles.
    pub latency_cycles: f64,
    /// Average latency in nanoseconds.
    pub latency_ns: f64,
    /// Whether the network was saturated at this point.
    pub saturated: bool,
}

/// A full latency-vs-throughput curve for one network configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCurve {
    /// Label, e.g. "NS-LatOp-large / MCLB".
    pub label: String,
    pub points: Vec<SweepPoint>,
    /// Zero-load latency estimate in cycles.
    pub zero_load_latency_cycles: f64,
}

impl LatencyCurve {
    /// Saturation throughput in flits/node/cycle: the largest accepted
    /// throughput among non-saturated points (falling back to the largest
    /// accepted value overall when every point saturated).
    pub fn saturation_flits_per_node_cycle(&self) -> f64 {
        let unsaturated = self
            .points
            .iter()
            .filter(|p| !p.saturated)
            .map(|p| p.accepted)
            .fold(0.0f64, f64::max);
        if unsaturated > 0.0 {
            unsaturated
        } else {
            self.points.iter().map(|p| p.accepted).fold(0.0, f64::max)
        }
    }

    /// Saturation throughput in packets/node/ns (the unit of Figure 6).
    pub fn saturation_packets_per_ns(&self, config: &SimConfig) -> f64 {
        config.flit_rate_to_packets_per_ns(self.saturation_flits_per_node_cycle())
    }

    /// Low-load average latency in nanoseconds (first point of the curve),
    /// or `None` for an empty curve.  (This used to return `0.0` for empty
    /// curves, which silently read as "infinitely fast" in comparisons.)
    pub fn low_load_latency_ns(&self) -> Option<f64> {
        self.points.first().map(|p| p.latency_ns)
    }

    /// CSV rows `offered,accepted,accepted_pkts_per_ns,latency_cycles,latency_ns,saturated`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "offered,accepted,accepted_pkts_per_ns,latency_cycles,latency_ns,saturated\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:.4},{:.4},{:.4},{:.2},{:.2},{}\n",
                p.offered,
                p.accepted,
                p.accepted_packets_per_ns,
                p.latency_cycles,
                p.latency_ns,
                p.saturated
            ));
        }
        out
    }
}

/// Options controlling how an injection-rate sweep executes.  The points
/// of a sweep are independent simulations (each `NetworkSim::run` builds
/// its own state), so they parallelize trivially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Number of load points submitted to the worker pool at once.  `1`
    /// reproduces the old sequential behaviour exactly; either way the
    /// per-point results are deterministic, because every run seeds its
    /// RNG from the offered load.
    pub max_threads: usize,
    /// Stop the sweep after this many *consecutive* saturated points —
    /// everything beyond them only re-measures the saturation plateau.
    /// `None` simulates every requested load.
    pub early_exit_saturated: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            max_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            early_exit_saturated: None,
        }
    }
}

impl SweepOptions {
    /// Parallel sweep that stops after two consecutive saturated points —
    /// the configuration the figure harnesses and fault sweeps use when
    /// only the pre-saturation shape of the curve matters.
    pub fn early_exit() -> Self {
        SweepOptions {
            early_exit_saturated: Some(2),
            ..Default::default()
        }
    }
}

/// An injection-rate sweep: the single entry point (the deprecated
/// `sweep_injection_rates` / `sweep_injection_rates_with` / `sweep_sim`
/// shims it replaced have been removed).  Configure it with
/// [`SweepOptions`], then run it either over a pre-built simulator ([`Sweep::run`] — which may carry failed routers,
/// see [`NetworkSim::with_failed_routers`]) or directly over network parts
/// ([`Sweep::run_network`]).
///
/// ```ignore
/// let curve = Sweep::new("mesh / MCLB")
///     .options(SweepOptions::early_exit())
///     .run(&sim, &loads);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    label: String,
    options: SweepOptions,
}

impl Sweep {
    /// A sweep with default [`SweepOptions`] (fully parallel, no early
    /// exit).
    pub fn new(label: impl Into<String>) -> Self {
        Sweep {
            label: label.into(),
            options: SweepOptions::default(),
        }
    }

    /// Replace the execution options.
    pub fn options(mut self, options: SweepOptions) -> Self {
        self.options = options;
        self
    }

    /// Sweep a pre-built simulator over `loads` (flits/node/cycle).
    /// Batches of [`SweepOptions::max_threads`] points run on the shared
    /// [`WorkerPool`]; each `run` call owns its state, so results are
    /// identical to a sequential sweep and the returned points stay in
    /// load order.
    pub fn run(&self, sim: &NetworkSim<'_>, loads: &[f64]) -> LatencyCurve {
        let config = sim.config().clone();
        let zero = sim.zero_load_latency_cycles();
        let threads = self.options.max_threads.max(1);
        let mut points = Vec::with_capacity(loads.len());
        'sweep: for batch in loads.chunks(threads) {
            let reports: Vec<SimReport> = if batch.len() == 1 || threads == 1 {
                batch.iter().map(|&load| sim.run(load)).collect()
            } else {
                WorkerPool::global().run(
                    batch
                        .iter()
                        .map(|&load| {
                            Box::new(move || sim.run(load))
                                as Box<dyn FnOnce() -> SimReport + Send + '_>
                        })
                        .collect(),
                )
            };
            for (report, &load) in reports.iter().zip(batch) {
                points.push(SweepPoint {
                    offered: load,
                    accepted: report.accepted_flits_per_node_cycle,
                    accepted_packets_per_ns: config
                        .flit_rate_to_packets_per_ns(report.accepted_flits_per_node_cycle),
                    latency_cycles: report.avg_latency_cycles,
                    latency_ns: report.avg_latency_ns,
                    saturated: report.is_saturated(zero),
                });
                if let Some(limit) = self.options.early_exit_saturated {
                    let trailing = points.iter().rev().take_while(|p| p.saturated).count();
                    if trailing >= limit.max(1) {
                        break 'sweep;
                    }
                }
            }
        }
        LatencyCurve {
            label: self.label.clone(),
            points,
            zero_load_latency_cycles: zero,
        }
    }

    /// Build a simulator for `(topo, table, vcs, pattern, config)` and
    /// sweep it over `loads`.
    pub fn run_network(
        &self,
        topo: &Topology,
        table: &RoutingTable,
        vcs: Option<&VcAllocation>,
        pattern: TrafficPattern,
        config: &SimConfig,
        loads: &[f64],
    ) -> LatencyCurve {
        let mut builder = NetworkSim::builder(topo, table)
            .pattern(pattern)
            .config(config.clone());
        if let Some(vcs) = vcs {
            builder = builder.vcs(vcs);
        }
        self.run(&builder.build(), loads)
    }
}

/// Default load grid used by the benchmark harness (flits/node/cycle).
/// The grid extends past 1.0 so that topologies whose cut/occupancy bounds
/// exceed the single-flit injection port can still be driven into
/// saturation (the injection process can start at most one packet per node
/// per cycle, i.e. up to ~5 flits/node/cycle of offered load).
pub fn default_load_grid() -> Vec<f64> {
    vec![
        0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2,
    ]
}

/// Convenience: saturation throughput (flits/node/cycle) via a bisection-
/// style search between `lo` and `hi`, cheaper than a full sweep when only
/// the saturation point matters.
#[allow(clippy::too_many_arguments)]
pub fn saturation_throughput(
    topo: &Topology,
    table: &RoutingTable,
    vcs: Option<&VcAllocation>,
    pattern: TrafficPattern,
    config: &SimConfig,
    lo: f64,
    hi: f64,
    iterations: usize,
) -> f64 {
    let mut builder = NetworkSim::builder(topo, table)
        .pattern(pattern)
        .config(config.clone());
    if let Some(vcs) = vcs {
        builder = builder.vcs(vcs);
    }
    let sim = builder.build();
    let zero = sim.zero_load_latency_cycles();
    let mut lo = lo.max(0.0);
    let mut hi = hi.max(lo + 1e-6);
    let mut best_accepted = 0.0f64;
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let report = sim.run(mid);
        if report.is_saturated(zero) {
            hi = mid;
            best_accepted = best_accepted.max(report.accepted_flits_per_node_cycle);
        } else {
            lo = mid;
            best_accepted = best_accepted.max(report.accepted_flits_per_node_cycle);
        }
    }
    best_accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_route::paths::all_shortest_paths;
    use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    fn curve_for(topo: &Topology, loads: &[f64]) -> (LatencyCurve, SimConfig) {
        let ps = all_shortest_paths(topo);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 9).unwrap();
        let config = SimConfig::quick();
        let curve = Sweep::new(topo.name()).run_network(
            topo,
            &table,
            Some(&alloc),
            TrafficPattern::UniformRandom,
            &config,
            loads,
        );
        (curve, config)
    }

    #[test]
    fn latency_is_monotonically_non_decreasing_with_load_until_saturation() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (curve, _) = curve_for(&mesh, &[0.05, 0.2, 0.5, 0.8]);
        assert_eq!(curve.points.len(), 4);
        // The last point must be slower than the first.
        assert!(curve.points.last().unwrap().latency_cycles > curve.points[0].latency_cycles);
        // Saturation flagged at the top of the sweep for a mesh.
        assert!(curve.points.last().unwrap().saturated);
    }

    #[test]
    fn saturation_throughput_is_positive_and_below_injection_cap() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        let (curve, config) = curve_for(&torus, &[0.05, 0.2, 0.4, 0.6, 0.8]);
        let sat = curve.saturation_flits_per_node_cycle();
        assert!(sat > 0.05, "saturation {sat}");
        assert!(sat <= 1.0);
        assert!(curve.saturation_packets_per_ns(&config) > 0.0);
    }

    #[test]
    fn csv_export_has_one_row_per_point() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (curve, _) = curve_for(&mesh, &[0.05, 0.3]);
        let csv = curve.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("offered,"));
    }

    #[test]
    fn bisection_saturation_matches_sweep_order() {
        // Folded torus must saturate at a higher load than the LPBT-like
        // sparse network.
        let layout = Layout::noi_4x5();
        let torus = expert::folded_torus(&layout);
        let lpbt = expert::lpbt_power(&layout);
        let config = SimConfig::quick();
        let sat = |topo: &Topology| {
            let ps = all_shortest_paths(topo);
            let table = mclb_route(&ps, &MclbConfig::default());
            let alloc = allocate_vcs(&table, 6, 9).unwrap();
            saturation_throughput(
                topo,
                &table,
                Some(&alloc),
                TrafficPattern::UniformRandom,
                &config,
                0.05,
                0.9,
                5,
            )
        };
        let torus_sat = sat(&torus);
        let lpbt_sat = sat(&lpbt);
        assert!(
            torus_sat > lpbt_sat,
            "torus {torus_sat} should beat LPBT-Power {lpbt_sat}"
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential_point_for_point() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 9).unwrap();
        let config = SimConfig::quick();
        let loads = [0.05, 0.2, 0.4, 0.6];
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(config)
            .build();
        let run = |threads: usize| {
            Sweep::new("mesh")
                .options(SweepOptions {
                    max_threads: threads,
                    early_exit_saturated: None,
                })
                .run(&sim, &loads)
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential, parallel);
        assert_eq!(parallel.points.len(), loads.len());
    }

    #[test]
    fn pooled_sweeps_nested_inside_pool_tasks_match_sequential() {
        // The suite runner executes sweeps from inside worker-pool tasks
        // (experiment cells), so a sweep's own pool submission nests.  The
        // helping submitter must keep that deadlock-free, and results must
        // still match a sequential sweep point for point.
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 9).unwrap();
        let config = SimConfig::quick();
        let loads = [0.05, 0.2, 0.4];
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(config)
            .build();
        let sequential = Sweep::new("mesh")
            .options(SweepOptions {
                max_threads: 1,
                early_exit_saturated: None,
            })
            .run(&sim, &loads);
        let nested: Vec<LatencyCurve> = netsmith_pool::WorkerPool::global().run(
            (0..2)
                .map(|_| {
                    let sim = &sim;
                    let loads = &loads;
                    Box::new(move || {
                        Sweep::new("mesh")
                            .options(SweepOptions {
                                max_threads: 4,
                                early_exit_saturated: None,
                            })
                            .run(sim, loads)
                    }) as Box<dyn FnOnce() -> LatencyCurve + Send + '_>
                })
                .collect(),
        );
        for curve in nested {
            assert_eq!(curve, sequential);
        }
    }

    #[test]
    fn early_exit_stops_after_consecutive_saturated_points() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 9).unwrap();
        let config = SimConfig::quick();
        // The mesh saturates well below 0.8: the tail of this grid must be
        // skipped once two consecutive points report saturation.
        let loads = [0.05, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2];
        let sim = NetworkSim::builder(&mesh, &table)
            .vcs(&alloc)
            .config(config)
            .build();
        let full = Sweep::new("mesh")
            .options(SweepOptions {
                max_threads: 1,
                early_exit_saturated: None,
            })
            .run(&sim, &loads);
        let early = Sweep::new("mesh")
            .options(SweepOptions {
                max_threads: 1,
                early_exit_saturated: Some(2),
            })
            .run(&sim, &loads);
        assert!(early.points.len() < full.points.len());
        // The tail it did measure ends with exactly the trigger: two
        // consecutive saturated points.
        let tail: Vec<bool> = early.points.iter().map(|p| p.saturated).collect();
        assert!(tail.ends_with(&[true, true]));
        // Identical prefix: early exit never changes measured values.
        assert_eq!(full.points[..early.points.len()], early.points[..]);
        // The saturation extraction is unaffected.
        assert!(
            (full.saturation_flits_per_node_cycle() - early.saturation_flits_per_node_cycle())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn saturation_falls_back_to_best_accepted_when_every_point_saturated() {
        let curve = LatencyCurve {
            label: "all-saturated".into(),
            points: vec![
                SweepPoint {
                    offered: 0.8,
                    accepted: 0.35,
                    accepted_packets_per_ns: 0.2,
                    latency_cycles: 300.0,
                    latency_ns: 100.0,
                    saturated: true,
                },
                SweepPoint {
                    offered: 1.0,
                    accepted: 0.32,
                    accepted_packets_per_ns: 0.19,
                    latency_cycles: 400.0,
                    latency_ns: 130.0,
                    saturated: true,
                },
            ],
            zero_load_latency_cycles: 12.0,
        };
        // No unsaturated point exists: fall back to the largest accepted
        // throughput overall.
        assert!((curve.saturation_flits_per_node_cycle() - 0.35).abs() < 1e-12);
        assert_eq!(curve.low_load_latency_ns(), Some(100.0));
    }

    #[test]
    fn empty_curve_has_no_low_load_latency() {
        let curve = LatencyCurve {
            label: "empty".into(),
            points: Vec::new(),
            zero_load_latency_cycles: 0.0,
        };
        assert_eq!(curve.low_load_latency_ns(), None);
        assert_eq!(curve.saturation_flits_per_node_cycle(), 0.0);
    }

    #[test]
    fn csv_round_trip_preserves_the_curve_shape() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (curve, _) = curve_for(&mesh, &[0.05, 0.3, 0.8]);
        let csv = curve.to_csv();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(
            header,
            [
                "offered",
                "accepted",
                "accepted_pkts_per_ns",
                "latency_cycles",
                "latency_ns",
                "saturated"
            ]
        );
        let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
        assert_eq!(rows.len(), curve.points.len());
        for (row, point) in rows.iter().zip(&curve.points) {
            assert_eq!(row.len(), header.len());
            // Each field parses back to (the rounded form of) its source.
            assert!((row[0].parse::<f64>().unwrap() - point.offered).abs() < 5e-5);
            assert!((row[1].parse::<f64>().unwrap() - point.accepted).abs() < 5e-5);
            assert!((row[3].parse::<f64>().unwrap() - point.latency_cycles).abs() < 5e-3);
            assert_eq!(row[5].parse::<bool>().unwrap(), point.saturated);
        }
    }

    #[test]
    fn default_grid_is_sorted_and_in_range() {
        let grid = default_load_grid();
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.iter().all(|&l| l > 0.0 && l <= 2.0));
    }
}
