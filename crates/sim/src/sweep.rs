//! Injection-rate sweeps and saturation-throughput extraction.
//!
//! The paper's Figures 6, 10 and 11 plot average packet latency against the
//! achieved throughput while sweeping the offered injection rate of
//! synthetic traffic.  [`sweep_injection_rates`] reproduces exactly that
//! curve for one topology + routing + VC allocation, and
//! [`saturation_throughput`] extracts the saturation point (the highest
//! load the network still delivers without the latency blowing up).

use crate::config::SimConfig;
use crate::network::{NetworkSim, SimReport};
use netsmith_route::{RoutingTable, VcAllocation};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::Topology;
use serde::{Deserialize, Serialize};

/// One point of a latency/throughput curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load (flits/node/cycle).
    pub offered: f64,
    /// Accepted throughput (flits/node/cycle).
    pub accepted: f64,
    /// Accepted throughput in packets/node/ns at the configured clock.
    pub accepted_packets_per_ns: f64,
    /// Average latency in cycles.
    pub latency_cycles: f64,
    /// Average latency in nanoseconds.
    pub latency_ns: f64,
    /// Whether the network was saturated at this point.
    pub saturated: bool,
}

/// A full latency-vs-throughput curve for one network configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCurve {
    /// Label, e.g. "NS-LatOp-large / MCLB".
    pub label: String,
    pub points: Vec<SweepPoint>,
    /// Zero-load latency estimate in cycles.
    pub zero_load_latency_cycles: f64,
}

impl LatencyCurve {
    /// Saturation throughput in flits/node/cycle: the largest accepted
    /// throughput among non-saturated points (falling back to the largest
    /// accepted value overall when every point saturated).
    pub fn saturation_flits_per_node_cycle(&self) -> f64 {
        let unsaturated = self
            .points
            .iter()
            .filter(|p| !p.saturated)
            .map(|p| p.accepted)
            .fold(0.0f64, f64::max);
        if unsaturated > 0.0 {
            unsaturated
        } else {
            self.points.iter().map(|p| p.accepted).fold(0.0, f64::max)
        }
    }

    /// Saturation throughput in packets/node/ns (the unit of Figure 6).
    pub fn saturation_packets_per_ns(&self, config: &SimConfig) -> f64 {
        config.flit_rate_to_packets_per_ns(self.saturation_flits_per_node_cycle())
    }

    /// Low-load average latency in nanoseconds (first point of the curve).
    pub fn low_load_latency_ns(&self) -> f64 {
        self.points.first().map(|p| p.latency_ns).unwrap_or(0.0)
    }

    /// CSV rows `offered,accepted,accepted_pkts_per_ns,latency_cycles,latency_ns,saturated`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "offered,accepted,accepted_pkts_per_ns,latency_cycles,latency_ns,saturated\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:.4},{:.4},{:.4},{:.2},{:.2},{}\n",
                p.offered,
                p.accepted,
                p.accepted_packets_per_ns,
                p.latency_cycles,
                p.latency_ns,
                p.saturated
            ));
        }
        out
    }
}

/// Sweep the offered injection rate over `loads` (flits/node/cycle) and
/// collect the latency curve.
pub fn sweep_injection_rates(
    label: impl Into<String>,
    topo: &Topology,
    table: &RoutingTable,
    vcs: Option<&VcAllocation>,
    pattern: TrafficPattern,
    config: &SimConfig,
    loads: &[f64],
) -> LatencyCurve {
    let sim = NetworkSim::new(topo, table, vcs, pattern, config.clone());
    let zero = sim.zero_load_latency_cycles();
    let mut points = Vec::with_capacity(loads.len());
    for &load in loads {
        let report: SimReport = sim.run(load);
        points.push(SweepPoint {
            offered: load,
            accepted: report.accepted_flits_per_node_cycle,
            accepted_packets_per_ns: config
                .flit_rate_to_packets_per_ns(report.accepted_flits_per_node_cycle),
            latency_cycles: report.avg_latency_cycles,
            latency_ns: report.avg_latency_ns,
            saturated: report.is_saturated(zero),
        });
    }
    LatencyCurve {
        label: label.into(),
        points,
        zero_load_latency_cycles: zero,
    }
}

/// Default load grid used by the benchmark harness (flits/node/cycle).
/// The grid extends past 1.0 so that topologies whose cut/occupancy bounds
/// exceed the single-flit injection port can still be driven into
/// saturation (the injection process can start at most one packet per node
/// per cycle, i.e. up to ~5 flits/node/cycle of offered load).
pub fn default_load_grid() -> Vec<f64> {
    vec![
        0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2,
    ]
}

/// Convenience: saturation throughput (flits/node/cycle) via a bisection-
/// style search between `lo` and `hi`, cheaper than a full sweep when only
/// the saturation point matters.
#[allow(clippy::too_many_arguments)]
pub fn saturation_throughput(
    topo: &Topology,
    table: &RoutingTable,
    vcs: Option<&VcAllocation>,
    pattern: TrafficPattern,
    config: &SimConfig,
    lo: f64,
    hi: f64,
    iterations: usize,
) -> f64 {
    let sim = NetworkSim::new(topo, table, vcs, pattern, config.clone());
    let zero = sim.zero_load_latency_cycles();
    let mut lo = lo.max(0.0);
    let mut hi = hi.max(lo + 1e-6);
    let mut best_accepted = 0.0f64;
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let report = sim.run(mid);
        if report.is_saturated(zero) {
            hi = mid;
            best_accepted = best_accepted.max(report.accepted_flits_per_node_cycle);
        } else {
            lo = mid;
            best_accepted = best_accepted.max(report.accepted_flits_per_node_cycle);
        }
    }
    best_accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_route::paths::all_shortest_paths;
    use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    fn curve_for(topo: &Topology, loads: &[f64]) -> (LatencyCurve, SimConfig) {
        let ps = all_shortest_paths(topo);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 9).unwrap();
        let config = SimConfig::quick();
        let curve = sweep_injection_rates(
            topo.name(),
            topo,
            &table,
            Some(&alloc),
            TrafficPattern::UniformRandom,
            &config,
            loads,
        );
        (curve, config)
    }

    #[test]
    fn latency_is_monotonically_non_decreasing_with_load_until_saturation() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (curve, _) = curve_for(&mesh, &[0.05, 0.2, 0.5, 0.8]);
        assert_eq!(curve.points.len(), 4);
        // The last point must be slower than the first.
        assert!(curve.points.last().unwrap().latency_cycles > curve.points[0].latency_cycles);
        // Saturation flagged at the top of the sweep for a mesh.
        assert!(curve.points.last().unwrap().saturated);
    }

    #[test]
    fn saturation_throughput_is_positive_and_below_injection_cap() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        let (curve, config) = curve_for(&torus, &[0.05, 0.2, 0.4, 0.6, 0.8]);
        let sat = curve.saturation_flits_per_node_cycle();
        assert!(sat > 0.05, "saturation {sat}");
        assert!(sat <= 1.0);
        assert!(curve.saturation_packets_per_ns(&config) > 0.0);
    }

    #[test]
    fn csv_export_has_one_row_per_point() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (curve, _) = curve_for(&mesh, &[0.05, 0.3]);
        let csv = curve.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("offered,"));
    }

    #[test]
    fn bisection_saturation_matches_sweep_order() {
        // Folded torus must saturate at a higher load than the LPBT-like
        // sparse network.
        let layout = Layout::noi_4x5();
        let torus = expert::folded_torus(&layout);
        let lpbt = expert::lpbt_power(&layout);
        let config = SimConfig::quick();
        let sat = |topo: &Topology| {
            let ps = all_shortest_paths(topo);
            let table = mclb_route(&ps, &MclbConfig::default());
            let alloc = allocate_vcs(&table, 6, 9).unwrap();
            saturation_throughput(
                topo,
                &table,
                Some(&alloc),
                TrafficPattern::UniformRandom,
                &config,
                0.05,
                0.9,
                5,
            )
        };
        let torus_sat = sat(&torus);
        let lpbt_sat = sat(&lpbt);
        assert!(
            torus_sat > lpbt_sat,
            "torus {torus_sat} should beat LPBT-Power {lpbt_sat}"
        );
    }

    #[test]
    fn default_grid_is_sorted_and_in_range() {
        let grid = default_load_grid();
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.iter().all(|&l| l > 0.0 && l <= 2.0));
    }
}
