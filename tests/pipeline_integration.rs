//! Cross-crate integration tests: the full discover → route → allocate →
//! simulate pipeline at reduced budgets.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_route::vc::verify_deadlock_free;

fn quick_discover(class: LinkClass, objective: Objective, seed: u64) -> DiscoveryResult {
    NetSmith::new(Layout::noi_4x5(), class)
        .objective(objective)
        .evaluations(4_000)
        .workers(2)
        .seed(seed)
        .discover()
}

#[test]
fn discovered_topology_flows_through_the_whole_pipeline() {
    let result = quick_discover(LinkClass::Medium, Objective::LatOp, 11);
    assert!(result.topology.is_valid());

    let network = EvaluatedNetwork::prepare(&result.topology, RoutingScheme::Mclb, 6, 11)
        .expect("discovered topology must be routable within 6 VCs");
    assert!(network.routing.is_complete());
    network.routing.validate(&network.topology).unwrap();
    assert!(verify_deadlock_free(&network.routing, &network.vcs));

    // Simulate a light and a moderate load; the light load must not
    // saturate and must deliver everything it injected.
    let config = SimConfig::quick();
    let curve = network.sweep(TrafficPattern::UniformRandom, &config, &[0.05, 0.3]);
    assert_eq!(curve.points.len(), 2);
    assert!(!curve.points[0].saturated);
    assert!(curve.points[0].latency_ns > 0.0);
    assert!(curve.points[1].accepted >= curve.points[0].accepted);
}

#[test]
fn expert_baselines_flow_through_the_pipeline_with_ndbt() {
    let layout = Layout::noi_4x5();
    for topo in expert::all_baselines(&layout) {
        let network = EvaluatedNetwork::prepare(&topo, RoutingScheme::Ndbt, 6, 3)
            .unwrap_or_else(|e| panic!("{} must prepare: {e}", topo.name()));
        assert!(verify_deadlock_free(&network.routing, &network.vcs));
        assert!(network.metrics.average_hops.is_finite());
        assert!(network.metrics.bisection_bandwidth > 0.0);
    }
}

#[test]
fn full_system_model_prefers_lower_latency_networks() {
    let layout = Layout::noi_4x5();
    let mesh =
        EvaluatedNetwork::prepare(&expert::mesh(&layout), RoutingScheme::Ndbt, 6, 5).unwrap();
    let kite = EvaluatedNetwork::prepare(&expert::kite_medium(&layout), RoutingScheme::Ndbt, 6, 5)
        .unwrap();
    let config = FullSystemConfig::quick();
    let mut better = 0;
    let mut total = 0;
    for profile in parsec_suite() {
        let base = evaluate_topology(
            &profile,
            &mesh.topology,
            &mesh.routing,
            Some(&mesh.vcs),
            &config,
        );
        let improved = evaluate_topology(
            &profile,
            &kite.topology,
            &kite.routing,
            Some(&kite.vcs),
            &config,
        );
        if improved.speedup_over(&base) >= 1.0 {
            better += 1;
        }
        total += 1;
    }
    // The kite must help (or at least not hurt) the large majority of the suite.
    assert!(
        better * 10 >= total * 8,
        "kite helped only {better}/{total}"
    );
}

#[test]
fn power_model_reports_mesh_normalized_values_from_measured_activity() {
    use netsmith::power::{area_report, relative_to, PowerConfig};
    let layout = Layout::noi_4x5();
    let cfg = PowerConfig::default();
    let mesh =
        EvaluatedNetwork::prepare(&expert::mesh(&layout), RoutingScheme::Ndbt, 6, 5).unwrap();
    let kite =
        EvaluatedNetwork::prepare(&expert::kite_large(&layout), RoutingScheme::Ndbt, 6, 5).unwrap();
    let sim_cfg = SimConfig::quick();
    let mesh_report = mesh.measure(TrafficPattern::UniformRandom, &sim_cfg, 0.2);
    let kite_report = kite.measure(TrafficPattern::UniformRandom, &sim_cfg, 0.2);
    let mesh_power =
        power_report_from_activity(&mesh.topology, &cfg, &sim_cfg, &mesh_report.activity);
    let kite_power =
        power_report_from_activity(&kite.topology, &cfg, &sim_cfg, &kite_report.activity);
    let rel = relative_to(kite_power.total_mw(), mesh_power.total_mw());
    assert!(rel > 0.5 && rel < 2.5, "relative power {rel}");
    let mesh_area = area_report(&mesh.topology, &cfg);
    let kite_area = area_report(&kite.topology, &cfg);
    assert!(kite_area.total_mm2() > mesh_area.total_mm2());
}

#[test]
fn energy_subsystem_flows_through_the_whole_pipeline() {
    // Discover an energy-optimal topology, route it, measure activity and
    // compare all three standard policies end to end.
    let result = quick_discover(
        LinkClass::Medium,
        Objective::EnergyOp { edp_weight: 25.0 },
        21,
    );
    assert!(result.topology.name().starts_with("NS-EnergyOp"));
    let network = EvaluatedNetwork::prepare(&result.topology, RoutingScheme::Mclb, 6, 21)
        .expect("energy-optimal topology must be routable within 6 VCs");
    let sim_cfg = SimConfig::quick();
    let energy_cfg = EnergyConfig::default();
    let report = network.measure(TrafficPattern::UniformRandom, &sim_cfg, 0.05);
    let always = network.energy_report(&AlwaysOn, &sim_cfg, &report, &energy_cfg);
    let sleep = network.energy_report(
        &LinkSleep {
            idle_threshold: 0.15,
            ..LinkSleep::default()
        },
        &sim_cfg,
        &report,
        &energy_cfg,
    );
    let dvfs = network.energy_report(&Dvfs::default(), &sim_cfg, &report, &energy_cfg);
    for e in [&always, &sleep, &dvfs] {
        assert!(e.routable, "{} not routable", e.policy);
        assert!(e.total_mw() > 0.0);
        assert!(e.energy_per_flit_pj > 0.0);
        assert!(e.edp_pj_ns > 0.0);
    }
    // Both managed policies beat the baseline at 5% load.
    assert!(sleep.total_mw() < always.total_mw());
    assert!(dvfs.total_mw() < always.total_mw());
}

#[test]
fn scop_and_latop_expose_the_latency_bandwidth_tradeoff() {
    let lat = quick_discover(LinkClass::Large, Objective::LatOp, 17);
    let sc = quick_discover(LinkClass::Large, Objective::SCOp, 18);
    // SCOp optimizes the cut; LatOp optimizes hops.  Even at tiny budgets
    // each must win (or tie) on its own metric.
    assert!(sc.objective.sparsest_cut >= lat.objective.sparsest_cut - 1e-9);
    assert!(lat.objective.average_hops <= sc.objective.average_hops + 1e-9);
}
