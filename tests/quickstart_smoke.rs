//! Fast CI smoke test: the quickstart pipeline — discover → route →
//! allocate escape VCs → simulate — end-to-end on a tiny 2x4 (8-router)
//! interposer, so every CI run exercises all layers in seconds without the
//! full figure workloads.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_route::vc::verify_deadlock_free;

#[test]
fn quickstart_pipeline_runs_on_a_tiny_topology() {
    let layout = Layout::interposer_grid(2, 4, 6);
    assert!(layout.num_routers() <= 8);

    // Discover (reduced budget: this is a smoke test, not a benchmark).
    let result = NetSmith::new(layout, LinkClass::Medium)
        .objective(Objective::LatOp)
        .evaluations(500)
        .workers(1)
        .seed(42)
        .discover();
    assert!(result.topology.is_valid());
    assert!(result.objective.average_hops >= 1.0);

    // Route with MCLB and allocate deadlock-free escape VCs.
    let network = EvaluatedNetwork::prepare(&result.topology, RoutingScheme::Mclb, 6, 42)
        .expect("tiny discovered topology must be routable within 6 VCs");
    assert!(network.routing.is_complete());
    network.routing.validate(&network.topology).unwrap();
    assert!(verify_deadlock_free(&network.routing, &network.vcs));

    // Simulate one light load point; it must not saturate and must deliver
    // measured traffic.
    let curve = network.sweep(TrafficPattern::UniformRandom, &SimConfig::quick(), &[0.05]);
    assert_eq!(curve.points.len(), 1);
    assert!(
        !curve.points[0].saturated,
        "0.05 flits/node/cycle must not saturate"
    );
    assert!(curve.points[0].latency_ns > 0.0);
    assert!(curve.points[0].accepted > 0.0);
}
