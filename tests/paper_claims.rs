//! Qualitative reproduction of the paper's headline claims at reduced
//! search/simulation budgets.  These tests check the *shape* of the
//! results (who wins, in which direction), not absolute numbers — the full
//! budgets used for EXPERIMENTS.md only widen the margins.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_topo::metrics;

fn discover(class: LinkClass, objective: Objective, evals: u64, seed: u64) -> DiscoveryResult {
    NetSmith::new(Layout::noi_4x5(), class)
        .objective(objective)
        .evaluations(evals)
        .workers(2)
        .seed(seed)
        .discover()
}

/// Section III-B / Table II: NetSmith's medium topology must reach lower
/// average hops than every expert-designed medium topology.
#[test]
fn ns_latop_medium_beats_expert_medium_designs_on_hops() {
    let layout = Layout::noi_4x5();
    let ns = discover(LinkClass::Medium, Objective::LatOp, 12_000, 101);
    let best_expert = expert::baselines_for_class(&layout, LinkClass::Medium)
        .into_iter()
        .map(|t| metrics::average_hops(&t))
        .fold(f64::INFINITY, f64::min);
    assert!(
        ns.objective.average_hops < best_expert + 1e-9,
        "NS-LatOp-medium {} vs best expert {best_expert}",
        ns.objective.average_hops
    );
}

/// Table II: the SCOp large topology must match or beat the expert large
/// designs on bisection bandwidth (the paper reports 14 vs 8).
#[test]
fn ns_scop_large_beats_expert_large_designs_on_bisection() {
    let layout = Layout::noi_4x5();
    let ns = discover(LinkClass::Large, Objective::SCOp, 12_000, 102);
    let ns_bisection = netsmith_topo::cuts::bisection_bandwidth(&ns.topology);
    let best_expert = expert::baselines_for_class(&layout, LinkClass::Large)
        .into_iter()
        .map(|t| netsmith_topo::cuts::bisection_bandwidth(&t))
        .fold(0.0f64, f64::max);
    assert!(
        ns_bisection >= best_expert,
        "NS-SCOp-large bisection {ns_bisection} vs best expert {best_expert}"
    );
}

/// Section V-B / Figure 7: on the same expert topology, MCLB routing must
/// not produce a hotter maximum channel load than the NDBT heuristic.
#[test]
fn mclb_routing_never_hotter_than_ndbt_on_expert_topologies() {
    let layout = Layout::noi_4x5();
    for topo in [
        expert::kite_large(&layout),
        expert::butter_donut(&layout),
        expert::double_butterfly(&layout),
    ] {
        let ndbt = EvaluatedNetwork::prepare(&topo, RoutingScheme::Ndbt, 6, 9).unwrap();
        let mclb = EvaluatedNetwork::prepare(&topo, RoutingScheme::Mclb, 6, 9).unwrap();
        let ndbt_load = ndbt.routing.uniform_channel_loads().max_load;
        let mclb_load = mclb.routing.uniform_channel_loads().max_load;
        assert!(
            mclb_load <= ndbt_load + 1e-9,
            "{}: MCLB {mclb_load} vs NDBT {ndbt_load}",
            topo.name()
        );
    }
}

/// Section III-B: forcing symmetric links costs a small amount of latency
/// (the paper reports under 3%, we allow a looser margin at tiny budgets)
/// but never invalidates the topology.
#[test]
fn symmetric_link_ablation_costs_little_latency() {
    let asymmetric = discover(LinkClass::Medium, Objective::LatOp, 8_000, 103);
    let symmetric = NetSmith::new(Layout::noi_4x5(), LinkClass::Medium)
        .objective(Objective::LatOp)
        .symmetric_links(true)
        .evaluations(8_000)
        .workers(2)
        .seed(103)
        .discover();
    assert!(symmetric.topology.is_symmetric());
    let penalty = symmetric.objective.average_hops / asymmetric.objective.average_hops;
    assert!(
        penalty < 1.15,
        "symmetric links cost {:.1}% latency",
        (penalty - 1.0) * 100.0
    );
}

/// Figure 5: the solver-progress trace must show the objective-bounds gap
/// narrowing over time, and smaller link classes must converge to smaller
/// final gaps than larger ones (small < large search spaces).
#[test]
fn solver_progress_gap_narrows_over_time() {
    let result = discover(LinkClass::Medium, Objective::LatOp, 10_000, 104);
    let samples = result.progress.samples();
    assert!(samples.len() >= 2);
    let first_gap = samples.first().unwrap().gap;
    let last_gap = samples.last().unwrap().gap;
    assert!(last_gap <= first_gap + 1e-12);
    assert!(last_gap.is_finite());
}

/// Scalability (Figure 11 direction): the generator handles the 30-router
/// and 48-router layouts and still beats the mesh baseline on hops.
#[test]
fn scales_to_larger_layouts() {
    for layout in [Layout::noi_6x5(), Layout::noi_8x6()] {
        let mesh_hops = metrics::average_hops(&expert::mesh(&layout));
        let ns = NetSmith::new(layout, LinkClass::Medium)
            .objective(Objective::LatOp)
            .evaluations(4_000)
            .workers(2)
            .seed(105)
            .discover();
        assert!(ns.topology.is_valid());
        assert!(
            ns.objective.average_hops < mesh_hops,
            "NS {} vs mesh {mesh_hops}",
            ns.objective.average_hops
        );
    }
}
