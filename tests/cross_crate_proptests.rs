//! Property-based tests spanning crates: any valid topology the generator
//! can produce must be routable, deadlock-free-allocatable and simulable.

use netsmith::gen::anneal::anneal;
use netsmith::gen::{AnnealConfig, GenerationProblem, Objective};
use netsmith::prelude::*;
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::vc::verify_deadlock_free;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever seed the annealer starts from, the resulting topology must
    /// route, allocate within 6 VCs and keep every shortest-path promise.
    #[test]
    fn any_discovered_topology_is_routable_and_deadlock_free(seed in 0u64..1000) {
        let problem = GenerationProblem::new(
            Layout::noi_4x5(),
            LinkClass::Medium,
            Objective::LatOp,
        );
        let config = AnnealConfig {
            seed,
            max_evaluations: 800,
            ..AnnealConfig::quick()
        };
        let result = anneal(&problem, &config, 0.0, &netsmith::obs::Obs::noop());
        prop_assert!(result.topology.is_valid());

        let paths = all_shortest_paths(&result.topology);
        let network = EvaluatedNetwork::prepare(&result.topology, RoutingScheme::Mclb, 6, seed);
        prop_assert!(network.is_ok(), "must be routable in 6 VCs: {:?}", network.as_ref().err());
        let network = network.unwrap();
        prop_assert!(verify_deadlock_free(&network.routing, &network.vcs));
        // Every routed path is a shortest path.
        for (flow, path) in network.routing.flows() {
            let expected = paths.distance(flow.src, flow.dst).unwrap();
            prop_assert_eq!((path.len() - 1) as u32, expected);
        }
    }

    /// The analytical cut bound always upper-bounds what the simulator
    /// actually delivers per cycle.
    #[test]
    fn simulated_throughput_never_exceeds_cut_bound(seed in 0u64..500) {
        let layout = Layout::noi_4x5();
        let topo = expert::kite_medium(&layout);
        let bounds = netsmith_topo::bounds::ThroughputBounds::compute(&topo);
        let network = EvaluatedNetwork::prepare(&topo, RoutingScheme::Mclb, 6, seed).unwrap();
        let mut config = SimConfig::quick();
        config.seed = seed;
        let curve = network.sweep(TrafficPattern::UniformRandom, &config, &[0.8]);
        let accepted = curve.points[0].accepted;
        prop_assert!(accepted <= bounds.limiting() + 0.05,
            "accepted {} exceeds analytical bound {}", accepted, bounds.limiting());
    }
}
