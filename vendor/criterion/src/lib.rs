//! Offline shim for `criterion`.
//!
//! Implements the subset used by `netsmith-bench`: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], per-group
//! `sample_size` / `measurement_time`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and [`black_box`]. Timing is real: each
//! benchmark body is warmed up once, then run for `sample_size` samples (or
//! until the measurement budget is spent) and the mean/min wall-clock time
//! per iteration is printed in a `name ... time: [mean min]` line loosely
//! mirroring criterion's output. There are no statistical comparisons or
//! HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times each routine
/// call individually, so the variants only influence batch bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmark names, matching
        // upstream criterion's CLI behavior for the common case.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full_name = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        if !self.criterion.matches(&full_name) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        bencher.report(&full_name);
        self
    }

    pub fn finish(&mut self) {}
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warmup
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<40} time: [mean {} | min {} | {} samples]",
            fmt_duration(mean),
            fmt_duration(min),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        group.bench_function("count_up", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs >= 2, "warmup plus at least one sample");
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |v| v.into_iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
