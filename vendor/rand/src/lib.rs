//! Offline shim for `rand` 0.8.
//!
//! Implements the subset of the `rand` API that NetSmith uses —
//! `SmallRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `SliceRandom::shuffle` — on top of a real SplitMix64 generator. The
//! stream differs from upstream `rand`, but every consumer in this
//! workspace only requires determinism for a fixed seed, which SplitMix64
//! provides.

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full range,
/// mirroring sampling from `rand::distributions::Standard`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit: f64 = Standard::sample_standard(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast generator (SplitMix64; stand-in for `rand`'s xoshiro).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one u64 of
            // state, and seed_from_u64(s) trivially decorrelates seeds.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    /// Alias so code written against `StdRng` also compiles.
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let inc: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
