//! Offline shim for `serde_json`.
//!
//! NetSmith intentionally serializes through its own text format
//! (`netsmith_topo::serialize`), so nothing in the workspace calls into this
//! crate today. It exists so `[workspace.dependencies]` stays complete and
//! future code can take a `serde_json` dependency without touching the
//! manifest graph. The error type is honest: every entry point reports that
//! JSON support is stubbed out rather than silently misbehaving.

use std::fmt;

/// Minimal JSON value tree (construction-only; no parser is wired up).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Error type for the stubbed entry points.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Stub: always errors (the shim carries no serializer).
pub fn to_string<T: serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error(
        "to_string is not implemented in the offline shim".into(),
    ))
}

/// Stub: always errors (the shim carries no parser).
pub fn from_str<'de, T: serde::Deserialize<'de>>(_s: &'de str) -> Result<T> {
    Err(Error(
        "from_str is not implemented in the offline shim".into(),
    ))
}
