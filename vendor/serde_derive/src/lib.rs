//! Offline shim for `serde_derive`.
//!
//! The real derives generate `Serialize`/`Deserialize` impls; the shim's
//! `serde` crate blanket-implements both marker traits for every type, so
//! these derives only need to *accept* the input (including `#[serde(...)]`
//! helper attributes) and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
