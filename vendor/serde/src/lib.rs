//! Offline shim for `serde`.
//!
//! NetSmith derives `Serialize`/`Deserialize` on its public data types but
//! persists everything through its own plain-text format
//! (`netsmith_topo::serialize`), so no code path ever calls a serde trait
//! method. The shim therefore only needs the trait *names* to exist (for
//! `use serde::{Deserialize, Serialize}` imports and generic bounds) plus
//! derive macros that accept the same input. Both traits are
//! blanket-implemented so the no-op derives are always sound.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// sized types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
