//! Offline shim for `proptest`.
//!
//! Provides the subset of the proptest API the NetSmith test suites use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range / tuple /
//! `any::<T>()` / [`collection::vec`] strategies, [`ProptestConfig`], and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics: each `proptest!` test really runs `ProptestConfig::cases`
//! random cases drawn from the strategies with a deterministic per-case
//! seed, so failures reproduce exactly across runs and machines. Unlike
//! upstream proptest there is **no shrinking** — a failing case simply
//! panics with the assertion message.

use rand::rngs::SmallRng;
use rand::{RngCore, SampleRange, SeedableRng};

pub mod test_runner {
    use super::*;

    /// Deterministic source of randomness for one test case.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Per-case generator: the same (test-suite constant, case index)
        /// pair always produces the same stream.
        pub fn deterministic(case: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(
                0x6E75_6D70_726F_7021_u64.wrapping_add(case.wrapping_mul(0x9E37_79B9)),
            ))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Run configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value` (subset of
/// `proptest::strategy::Strategy`; sampling only, no value tree).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Output of [`Strategy::prop_filter`]; rejection-samples with a retry cap.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1024 rejections: {}", self.whence);
    }
}

/// Uniform ranges double as strategies, e.g. `0u64..10_000`.
impl<T: Copy> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_from(&mut rng.0)
    }
}

impl<T: Copy> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_from(&mut rng.0)
    }
}

/// Constant strategy (subset of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_standard(&mut rng.0)
    }
}

/// `any::<T>()` — uniform over the type's full value range.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification accepted by [`vec()`]: a fixed length or
    /// a half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!`-based test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test (no shrinking, so this simply panics with
/// the case context attached by [`proptest!`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests. Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(any::<bool>(), 8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}
