//! Quickstart: discover a latency-optimized NoI topology for the paper's
//! 20-router (4x5) interposer, compare it against the expert-designed
//! baselines of the same link-length class, and print a Table II-style
//! metric report.
//!
//! Run with `cargo run --release --example quickstart`.
//! Set `NETSMITH_EVALS` (default 40000) to trade time for quality.

use netsmith::prelude::*;
use netsmith_topo::metrics::TopologyMetrics;

fn main() {
    let evals: u64 = std::env::var("NETSMITH_EVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let layout = Layout::noi_4x5();
    let class = LinkClass::Medium;

    println!("NetSmith quickstart: {} / {} link class", layout, class);
    println!("searching with {evals} evaluations per worker...\n");

    let result = NetSmith::new(layout.clone(), class)
        .objective(Objective::LatOp)
        .evaluations(evals)
        .workers(4)
        .seed(2024)
        .discover();

    println!(
        "discovered {} with average hops {:.3} (objective-bounds gap {:.1}%)",
        result.topology.name(),
        result.objective.average_hops,
        result.gap * 100.0
    );
    println!();

    // Compare against the expert-designed baselines of the same class.
    println!("{}", TopologyMetrics::csv_header());
    for baseline in expert::baselines_for_class(&layout, class) {
        println!("{}", TopologyMetrics::compute(&baseline).csv_row());
    }
    println!("{}", TopologyMetrics::compute(&result.topology).csv_row());

    // Route the discovered topology and estimate its saturation throughput.
    let network = EvaluatedNetwork::prepare(&result.topology, RoutingScheme::Mclb, 6, 1)
        .expect("discovered topology must be routable");
    println!(
        "\nMCLB max channel load: {:.2} flows on the hottest link; {} escape VCs required",
        network.routing.uniform_channel_loads().max_load * 380.0,
        network.vcs.escape_layers
    );
    println!(
        "\ndiscovered topology (DOT):\n{}",
        netsmith_topo::viz::to_dot(&result.topology, None)
    );
}
