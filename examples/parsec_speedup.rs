//! Full-system PARSEC-style evaluation (the experiment behind the paper's
//! Figure 8): execution-time speedup and packet-latency reduction relative
//! to the mesh baseline for every benchmark profile, across a small set of
//! topologies.
//!
//! Run with `cargo run --release --example parsec_speedup`.

use netsmith::prelude::*;

fn main() {
    let evals: u64 = std::env::var("NETSMITH_EVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25_000);
    let layout = Layout::noi_4x5();
    let config = FullSystemConfig::default();

    // Mesh baseline plus one expert and one NetSmith topology per class
    // would take a while; the example uses the medium class as in the
    // paper's headline Kite comparison.
    let mesh =
        EvaluatedNetwork::prepare(&expert::mesh(&layout), RoutingScheme::Ndbt, 6, 5).unwrap();
    let kite = EvaluatedNetwork::prepare(&expert::kite_medium(&layout), RoutingScheme::Ndbt, 6, 5)
        .unwrap();
    let ns = NetSmith::new(layout.clone(), LinkClass::Medium)
        .objective(Objective::LatOp)
        .evaluations(evals)
        .workers(4)
        .seed(5)
        .discover();
    let ns = EvaluatedNetwork::prepare(&ns.topology, RoutingScheme::Mclb, 6, 5).unwrap();

    println!("benchmark,topology,speedup_vs_mesh,packet_latency_reduction_vs_mesh");
    for profile in parsec_suite() {
        let base = evaluate_topology(
            &profile,
            &mesh.topology,
            &mesh.routing,
            Some(&mesh.vcs),
            &config,
        );
        for network in [&kite, &ns] {
            let r = evaluate_topology(
                &profile,
                &network.topology,
                &network.routing,
                Some(&network.vcs),
                &config,
            );
            println!(
                "{},{},{:.4},{:.4}",
                profile.name,
                network.topology.name(),
                r.speedup_over(&base),
                r.latency_reduction_over(&base)
            );
        }
    }
}
