//! Pattern-optimized topology discovery (the experiment behind the paper's
//! Figure 10): generate a topology optimized for the gem5 "shuffle"
//! permutation and show that it outperforms both the expert networks and
//! the uniform-random-optimized NetSmith topology under that pattern.
//!
//! Run with `cargo run --release --example shuffle_custom`.

use netsmith::gen::Objective;
use netsmith::prelude::*;

fn main() {
    let evals: u64 = std::env::var("NETSMITH_EVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25_000);
    let layout = Layout::noi_4x5();
    let class = LinkClass::Medium;
    let shuffle = TrafficPattern::Shuffle.demand_matrix(&layout);

    // Uniform-optimized and shuffle-optimized NetSmith topologies.
    let ns_uniform = NetSmith::new(layout.clone(), class)
        .objective(Objective::LatOp)
        .evaluations(evals)
        .workers(2)
        .seed(21)
        .discover();
    let ns_shuffle = NetSmith::new(layout.clone(), class)
        .objective(Objective::PatternLatOp(shuffle.clone()))
        .evaluations(evals)
        .workers(2)
        .seed(22)
        .discover();

    let mut rows = Vec::new();
    for (name, topo, scheme) in [
        (
            "Kite-Medium",
            expert::kite_medium(&layout),
            RoutingScheme::Ndbt,
        ),
        (
            "FoldedTorus",
            expert::folded_torus(&layout),
            RoutingScheme::Ndbt,
        ),
        ("NS-LatOp", ns_uniform.topology.clone(), RoutingScheme::Mclb),
        (
            "NS-ShufOpt",
            ns_shuffle.topology.clone(),
            RoutingScheme::Mclb,
        ),
    ] {
        let network = EvaluatedNetwork::prepare(&topo, scheme, 6, 33).expect("routable");
        let config = network.sim_config();
        let curve = network.sweep(
            TrafficPattern::Shuffle,
            &config,
            &[0.05, 0.15, 0.3, 0.5, 0.7],
        );
        let weighted_hops = netsmith_topo::metrics::weighted_average_hops(&topo, &shuffle);
        rows.push((
            name,
            weighted_hops,
            curve.saturation_packets_per_ns(&config),
        ));
    }

    println!("topology,shuffle_weighted_hops,shuffle_saturation_pkts_per_ns");
    for (name, hops, sat) in rows {
        println!("{name},{hops:.3},{sat:.3}");
    }
}
