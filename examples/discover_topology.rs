//! Discover NetSmith topologies for every link-length class and both
//! objectives (LatOp and SCOp), reproducing the per-class "NS-*" rows of
//! the paper's Table II for the 20-router interposer.
//!
//! Usage:
//!   cargo run --release --example discover_topology [small|medium|large] [latop|scop]
//!
//! Without arguments, all classes and both objectives are generated.
//! `NETSMITH_EVALS` controls the per-worker search budget.

use netsmith::prelude::*;
use netsmith_topo::metrics::TopologyMetrics;

fn classes_from(arg: Option<&str>) -> Vec<LinkClass> {
    match arg {
        Some("small") => vec![LinkClass::Small],
        Some("medium") => vec![LinkClass::Medium],
        Some("large") => vec![LinkClass::Large],
        _ => vec![LinkClass::Small, LinkClass::Medium, LinkClass::Large],
    }
}

fn objectives_from(arg: Option<&str>) -> Vec<Objective> {
    match arg {
        Some("latop") => vec![Objective::LatOp],
        Some("scop") => vec![Objective::SCOp],
        _ => vec![Objective::LatOp, Objective::SCOp],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let evals: u64 = std::env::var("NETSMITH_EVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let layout = Layout::noi_4x5();

    println!("{}", TopologyMetrics::csv_header());
    for class in classes_from(args.first().map(|s| s.as_str())) {
        for objective in objectives_from(args.get(1).map(|s| s.as_str())) {
            let result = NetSmith::new(layout.clone(), class)
                .objective(objective.clone())
                .evaluations(evals)
                .workers(4)
                .seed(7 + class.clock_ghz() as u64)
                .discover();
            let metrics = TopologyMetrics::compute(&result.topology);
            println!("{}", metrics.csv_row());
            eprintln!(
                "# {}: gap {:.1}% after {} evaluations",
                result.topology.name(),
                result.gap * 100.0,
                result.evaluations
            );
        }
    }
}
