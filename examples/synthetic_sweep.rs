//! Synthetic uniform-random traffic sweep (the experiment behind the
//! paper's Figure 6): latency vs accepted throughput for a set of 20-router
//! topologies, each routed with its paper-assigned scheme (NDBT for the
//! expert designs, MCLB for NetSmith) and clocked per its link class.
//!
//! Run with `cargo run --release --example synthetic_sweep`.

use netsmith::prelude::*;

fn main() {
    let evals: u64 = std::env::var("NETSMITH_EVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25_000);
    let layout = Layout::noi_4x5();
    let loads = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];

    // Expert baselines use the NDBT heuristic, NetSmith uses MCLB —
    // exactly the assignment used in the paper's evaluation.
    let mut networks: Vec<EvaluatedNetwork> = Vec::new();
    for baseline in [
        expert::kite_small(&layout),
        expert::folded_torus(&layout),
        expert::kite_large(&layout),
        expert::butter_donut(&layout),
    ] {
        if let Ok(n) = EvaluatedNetwork::prepare(&baseline, RoutingScheme::Ndbt, 6, 11) {
            networks.push(n);
        }
    }
    let ns = NetSmith::new(layout.clone(), LinkClass::Large)
        .objective(Objective::LatOp)
        .evaluations(evals)
        .workers(4)
        .seed(3)
        .discover();
    networks.push(
        EvaluatedNetwork::prepare(&ns.topology, RoutingScheme::Mclb, 6, 11)
            .expect("NetSmith topology routable"),
    );

    println!("topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated");
    for network in &networks {
        let config = network.sim_config();
        let curve = network.sweep(TrafficPattern::UniformRandom, &config, &loads);
        for p in &curve.points {
            println!(
                "{},{},{:.3},{:.4},{:.2},{}",
                network.topology.name(),
                network.scheme.label(),
                p.offered,
                p.accepted_packets_per_ns,
                p.latency_ns,
                p.saturated
            );
        }
        eprintln!(
            "# {} saturates at {:.3} packets/node/ns",
            network.label(),
            curve.saturation_packets_per_ns(&config)
        );
    }
}
